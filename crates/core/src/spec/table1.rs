//! Ready-made constructors for every invariant family in the paper's
//! Table 1.
//!
//! Each constructor returns a complete [`Invariant`] given a packet space
//! and the device names it mentions. Names are validated against the
//! topology when the invariant is planned.

use super::{Behavior, Invariant, PacketSpace, PathExpr, SpecError};
use crate::count::CountExpr;

fn pe(src: &str) -> Result<PathExpr, SpecError> {
    PathExpr::parse(src)
}

/// Reachability: `(P, [S], (exist >= 1, S .* D))`.
pub fn reachability(ps: PacketSpace, src: &str, dst: &str) -> Result<Invariant, SpecError> {
    Invariant::builder()
        .name(format!("reachability {src}->{dst}"))
        .packet_space(ps)
        .ingress([src])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            pe(&format!("{src} .* {dst}"))?.loop_free(),
        ))
        .build()
}

/// Isolation: `(P, [S], (exist == 0, S .* D))`.
pub fn isolation(ps: PacketSpace, src: &str, dst: &str) -> Result<Invariant, SpecError> {
    Invariant::builder()
        .name(format!("isolation {src}-x->{dst}"))
        .packet_space(ps)
        .ingress([src])
        .behavior(Behavior::exist(
            CountExpr::eq(0),
            pe(&format!("{src} .* {dst}"))?.loop_free(),
        ))
        .build()
}

/// Loop-freeness: every trace is a simple path. Expressed as coverage of
/// the loop-free path set (equivalent to Table 1's `exist == 0` over the
/// looping-path expression, which is exponential as a regex).
pub fn loop_freeness(ps: PacketSpace, src: &str) -> Result<Invariant, SpecError> {
    Invariant::builder()
        .name(format!("loop-freeness from {src}"))
        .packet_space(ps)
        .ingress([src])
        .behavior(Behavior::covered(pe(&format!("{src} .*"))?.loop_free()))
        .build()
}

/// Blackhole-freeness: `(P, [S], (exist == 0, .* and not S.*D))` — every
/// trace reaches `dst`, i.e. coverage of `S .* D`.
pub fn blackhole_freeness(ps: PacketSpace, src: &str, dst: &str) -> Result<Invariant, SpecError> {
    Invariant::builder()
        .name(format!("blackhole-freeness {src}->{dst}"))
        .packet_space(ps)
        .ingress([src])
        .behavior(Behavior::covered(
            pe(&format!("{src} .* {dst}"))?.loop_free(),
        ))
        .build()
}

/// Waypoint reachability: `(P, [S], (exist >= 1, S .* W .* D))`.
pub fn waypoint(ps: PacketSpace, src: &str, wp: &str, dst: &str) -> Result<Invariant, SpecError> {
    Invariant::builder()
        .name(format!("waypoint {src}->{wp}->{dst}"))
        .packet_space(ps)
        .ingress([src])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            pe(&format!("{src} .* {wp} .* {dst}"))?.loop_free(),
        ))
        .build()
}

/// Reachability with limited path length:
/// `(P, [S], (exist >= 1, SD | S.D | S..D))`.
pub fn limited_length_reachability(
    ps: PacketSpace,
    src: &str,
    dst: &str,
    max_hops: u32,
) -> Result<Invariant, SpecError> {
    Invariant::builder()
        .name(format!("reachability {src}->{dst} within {max_hops} hops"))
        .packet_space(ps)
        .ingress([src])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            pe(&format!("{src} .* {dst}"))?
                .loop_free()
                .max_hops(max_hops),
        ))
        .build()
}

/// Different-ingress same reachability:
/// `(P, [X, Y], (exist >= 1, X.*D | Y.*D))`.
pub fn different_ingress_reachability(
    ps: PacketSpace,
    ingresses: &[&str],
    dst: &str,
) -> Result<Invariant, SpecError> {
    let alts = ingresses
        .iter()
        .map(|i| format!("{i} .* {dst}"))
        .collect::<Vec<_>>()
        .join(" | ");
    Invariant::builder()
        .name(format!("different-ingress reachability ->{dst}"))
        .packet_space(ps)
        .ingress(ingresses.iter().copied())
        .behavior(Behavior::exist(CountExpr::ge(1), pe(&alts)?.loop_free()))
        .build()
}

/// All-shortest-path availability (Azure RCDC):
/// `(P, [S], (equal, (S.*D, == shortest)))`.
pub fn all_shortest_path(ps: PacketSpace, src: &str, dst: &str) -> Result<Invariant, SpecError> {
    Invariant::builder()
        .name(format!("all-shortest-path {src}->{dst}"))
        .packet_space(ps)
        .ingress([src])
        .behavior(Behavior::equal(
            pe(&format!("{src} .* {dst}"))?.shortest_only(),
        ))
        .build()
}

/// Non-redundant reachability: `(P, [S], (exist == 1, S .* D))` —
/// exactly one copy delivered in every universe.
pub fn non_redundant_reachability(
    ps: PacketSpace,
    src: &str,
    dst: &str,
) -> Result<Invariant, SpecError> {
    Invariant::builder()
        .name(format!("non-redundant reachability {src}->{dst}"))
        .packet_space(ps)
        .ingress([src])
        .behavior(Behavior::exist(
            CountExpr::eq(1),
            pe(&format!("{src} .* {dst}"))?.loop_free(),
        ))
        .build()
}

/// 1+1 protection routing (§10 lists it among the invariants
/// centralized tools lack): at least two copies of every packet are
/// delivered in every universe.
pub fn one_plus_one(ps: PacketSpace, src: &str, dst: &str) -> Result<Invariant, SpecError> {
    Invariant::builder()
        .name(format!("1+1 routing {src}->{dst}"))
        .packet_space(ps)
        .ingress([src])
        .behavior(Behavior::exist(
            CountExpr::ge(2),
            pe(&format!("{src} .* {dst}"))?.loop_free(),
        ))
        .build()
}

/// Multicast: `(P, [S], (exist >= 1, S.*D) and (exist >= 1, S.*E))`.
pub fn multicast(ps: PacketSpace, src: &str, dsts: &[&str]) -> Result<Invariant, SpecError> {
    let mut parts = dsts.iter().map(|d| {
        pe(&format!("{src} .* {d}")).map(|p| Behavior::exist(CountExpr::ge(1), p.loop_free()))
    });
    let first = parts
        .next()
        .ok_or_else(|| SpecError("multicast needs a destination".into()))??;
    let behavior = parts.try_fold(first, |acc, b| b.map(|b| acc.and(b)))?;
    Invariant::builder()
        .name(format!("multicast {src}->{dsts:?}"))
        .packet_space(ps)
        .ingress([src])
        .behavior(behavior)
        .build()
}

/// Anycast to exactly one of two destinations:
/// `((exist >= 1, S.*D) and (exist == 0, S.*E)) or
///  ((exist == 0, S.*D) and (exist == 1, S.*E))`.
pub fn anycast(ps: PacketSpace, src: &str, d1: &str, d2: &str) -> Result<Invariant, SpecError> {
    let pd = pe(&format!("{src} .* {d1}"))?.loop_free();
    let qd = pe(&format!("{src} .* {d2}"))?.loop_free();
    let case1 = Behavior::exist(CountExpr::ge(1), pd.clone())
        .and(Behavior::exist(CountExpr::eq(0), qd.clone()));
    let case2 = Behavior::exist(CountExpr::eq(0), pd).and(Behavior::exist(CountExpr::eq(1), qd));
    Invariant::builder()
        .name(format!("anycast {src}->{d1}|{d2}"))
        .packet_space(ps)
        .ingress([src])
        .behavior(case1.or(case2))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FaultSpec;

    fn ps() -> PacketSpace {
        PacketSpace::dst_prefix("10.0.0.0/23")
    }

    #[test]
    fn all_constructors_build() {
        reachability(ps(), "S", "D").unwrap();
        isolation(ps(), "S", "D").unwrap();
        loop_freeness(ps(), "S").unwrap();
        blackhole_freeness(ps(), "S", "D").unwrap();
        waypoint(ps(), "S", "W", "D").unwrap();
        limited_length_reachability(ps(), "S", "D", 3).unwrap();
        different_ingress_reachability(ps(), &["X", "Y"], "D").unwrap();
        all_shortest_path(ps(), "S", "D").unwrap();
        non_redundant_reachability(ps(), "S", "D").unwrap();
        multicast(ps(), "S", &["D", "E"]).unwrap();
        anycast(ps(), "S", "D", "E").unwrap();
    }

    #[test]
    fn one_plus_one_builds() {
        let inv = one_plus_one(ps(), "S", "D").unwrap();
        let Behavior::Exist { count, .. } = &inv.behavior else {
            panic!()
        };
        assert_eq!(*count, CountExpr::Ge(2));
    }

    #[test]
    fn anycast_has_two_path_exprs() {
        let inv = anycast(ps(), "S", "D", "E").unwrap();
        assert_eq!(inv.behavior.path_exprs().len(), 2);
        assert!(!inv.behavior.has_equal());
    }

    #[test]
    fn all_shortest_path_is_equal_behavior() {
        let inv = all_shortest_path(ps(), "S", "D").unwrap();
        assert!(inv.behavior.has_equal());
        assert_eq!(inv.fault_scenes, FaultSpec::None);
    }

    #[test]
    fn multicast_requires_destinations() {
        assert!(multicast(ps(), "S", &[]).is_err());
    }
}
