//! Textual surface syntax for the invariant language.
//!
//! The syntax mirrors the paper's tuples:
//!
//! ```text
//! (dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))
//! (dstIP=10.0.1.0/24 && dstPort=80, [S], (exist >= 1, /S .* D/))
//! (*, [S], (equal, /S .* D/ (== shortest)))
//! (dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* D/ (<= shortest+1)),
//!  faults: any_two)
//! (dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* D/),
//!  faults: {(A,B)} {(B,W) (B,D)})
//! ```
//!
//! Path expressions are written between slashes; `loop_free` and
//! parenthesized length filters follow. Behaviors combine with `and`,
//! `or`, `not`; `subset` expands to the pair of §3.

use super::{
    Behavior, FaultSpec, FilterOp, Invariant, LengthBound, LengthFilter, PacketSpace, PathExpr,
    SpecError,
};
use crate::count::CountExpr;

/// Parses one invariant.
pub fn parse_invariant(input: &str) -> Result<Invariant, SpecError> {
    let mut c = Cursor::new(input);
    let inv = parse_inv(&mut c)?;
    c.skip_ws();
    if !c.at_end() {
        return Err(c.err("trailing input"));
    }
    Ok(inv)
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.rest().is_empty()
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn err(&self, msg: &str) -> SpecError {
        let ctx: String = self.rest().chars().take(24).collect();
        SpecError(format!("{msg} at byte {} (near {ctx:?})", self.pos))
    }

    /// Consumes a literal token if present.
    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    /// Consumes a keyword: literal followed by a non-identifier char.
    fn eat_kw(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let r = self.rest();
        if let Some(rest) = r.strip_prefix(kw) {
            let next = rest.chars().next();
            if next.is_none_or(|c| !c.is_ascii_alphanumeric() && c != '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn expect(&mut self, tok: &str) -> Result<(), SpecError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {tok:?}")))
        }
    }

    /// Reads an identifier (device names, keywords).
    fn ident(&mut self) -> Result<&'a str, SpecError> {
        self.skip_ws();
        let r = self.rest();
        let end = r
            .char_indices()
            .find(|(_, c)| !c.is_ascii_alphanumeric() && *c != '_' && *c != '-')
            .map(|(i, _)| i)
            .unwrap_or(r.len());
        if end == 0 {
            return Err(self.err("expected an identifier"));
        }
        self.pos += end;
        Ok(&r[..end])
    }

    fn number(&mut self) -> Result<u32, SpecError> {
        self.skip_ws();
        let r = self.rest();
        let end = r.find(|c: char| !c.is_ascii_digit()).unwrap_or(r.len());
        if end == 0 {
            return Err(self.err("expected a number"));
        }
        self.pos += end;
        r[..end]
            .parse()
            .map_err(|_| self.err("number out of range"))
    }

    /// Peeks whether the next non-ws chars start with `tok`.
    fn peek(&mut self, tok: &str) -> bool {
        self.skip_ws();
        self.rest().starts_with(tok)
    }
}

fn parse_inv(c: &mut Cursor) -> Result<Invariant, SpecError> {
    c.expect("(")?;
    let packet_space = parse_packet_space(c)?;
    c.expect(",")?;
    let ingress = parse_ingress(c)?;
    c.expect(",")?;
    let behavior = parse_behavior(c)?;
    let fault_scenes = if c.eat(",") {
        c.expect("faults")?;
        c.expect(":")?;
        parse_faults(c)?
    } else {
        FaultSpec::None
    };
    c.expect(")")?;
    let mut b = Invariant::builder()
        .packet_space(packet_space)
        .ingress(ingress)
        .behavior(behavior);
    if fault_scenes != FaultSpec::None {
        b = b.fault_scenes(fault_scenes);
    }
    b.build()
}

fn parse_packet_space(c: &mut Cursor) -> Result<PacketSpace, SpecError> {
    if c.eat("*") {
        return Ok(PacketSpace::All);
    }
    let mut acc = parse_ps_term(c)?;
    loop {
        if c.eat("&&") {
            let rhs = parse_ps_term(c)?;
            acc = acc.and(rhs);
        } else if c.eat("||") {
            let rhs = parse_ps_term(c)?;
            acc = acc.or(rhs);
        } else {
            return Ok(acc);
        }
    }
}

fn parse_ps_term(c: &mut Cursor) -> Result<PacketSpace, SpecError> {
    if c.eat("!") {
        return Ok(parse_ps_term(c)?.not());
    }
    if c.eat_kw("dstIP") {
        c.expect("=")?;
        c.skip_ws();
        let r = c.rest();
        let end = r
            .find(|ch: char| !ch.is_ascii_digit() && ch != '.' && ch != '/')
            .unwrap_or(r.len());
        let text = &r[..end];
        c.pos += end;
        return PacketSpace::try_dst_prefix(text);
    }
    if c.eat_kw("dstPort") {
        let negate = if c.eat("!=") {
            true
        } else {
            c.expect("=")?;
            false
        };
        let n = c.number()?;
        if n > u16::MAX as u32 {
            return Err(c.err("port out of range"));
        }
        let ps = PacketSpace::dst_port(n as u16);
        return Ok(if negate { ps.not() } else { ps });
    }
    if c.eat_kw("proto") {
        c.expect("=")?;
        let n = c.number()?;
        if n > u8::MAX as u32 {
            return Err(c.err("proto out of range"));
        }
        return Ok(PacketSpace::Proto(n as u8));
    }
    Err(c.err("expected dstIP=, dstPort=, proto= or '*'"))
}

fn parse_ingress(c: &mut Cursor) -> Result<Vec<String>, SpecError> {
    c.expect("[")?;
    let mut out = Vec::new();
    loop {
        out.push(c.ident()?.to_string());
        if !c.eat(",") {
            break;
        }
    }
    c.expect("]")?;
    Ok(out)
}

fn parse_behavior(c: &mut Cursor) -> Result<Behavior, SpecError> {
    let mut acc = parse_behavior_and(c)?;
    while c.eat_kw("or") {
        let rhs = parse_behavior_and(c)?;
        acc = acc.or(rhs);
    }
    Ok(acc)
}

fn parse_behavior_and(c: &mut Cursor) -> Result<Behavior, SpecError> {
    let mut acc = parse_behavior_not(c)?;
    while c.eat_kw("and") {
        let rhs = parse_behavior_not(c)?;
        acc = acc.and(rhs);
    }
    Ok(acc)
}

fn parse_behavior_not(c: &mut Cursor) -> Result<Behavior, SpecError> {
    if c.eat_kw("not") {
        return Ok(parse_behavior_not(c)?.not());
    }
    c.expect("(")?;
    let b = if c.eat_kw("exist") {
        let op = parse_cmp(c)?;
        let n = c.number()?;
        c.expect(",")?;
        let path = parse_pathspec(c)?;
        Behavior::exist(mk_count(op, n), path)
    } else if c.eat_kw("equal") {
        c.expect(",")?;
        Behavior::equal(parse_pathspec(c)?)
    } else if c.eat_kw("covered") {
        c.expect(",")?;
        Behavior::covered(parse_pathspec(c)?)
    } else if c.eat_kw("subset") {
        c.expect(",")?;
        Behavior::subset(parse_pathspec(c)?)
    } else {
        // Nested behavior in parentheses.
        let inner = parse_behavior(c)?;
        c.expect(")")?;
        return Ok(inner);
    };
    c.expect(")")?;
    Ok(b)
}

#[derive(Clone, Copy)]
enum Cmp {
    Eq,
    Ge,
    Gt,
    Le,
    Lt,
}

fn parse_cmp(c: &mut Cursor) -> Result<Cmp, SpecError> {
    if c.eat(">=") {
        Ok(Cmp::Ge)
    } else if c.eat("<=") {
        Ok(Cmp::Le)
    } else if c.eat("==") {
        Ok(Cmp::Eq)
    } else if c.eat(">") {
        Ok(Cmp::Gt)
    } else if c.eat("<") {
        Ok(Cmp::Lt)
    } else {
        Err(c.err("expected a comparison operator"))
    }
}

fn mk_count(op: Cmp, n: u32) -> CountExpr {
    match op {
        Cmp::Eq => CountExpr::Eq(n),
        Cmp::Ge => CountExpr::Ge(n),
        Cmp::Gt => CountExpr::Gt(n),
        Cmp::Le => CountExpr::Le(n),
        Cmp::Lt => CountExpr::Lt(n),
    }
}

fn parse_pathspec(c: &mut Cursor) -> Result<PathExpr, SpecError> {
    c.skip_ws();
    c.expect("/")?;
    let r = c.rest();
    let end = r.find('/').ok_or_else(|| c.err("unterminated /regex/"))?;
    let regex_src = &r[..end];
    c.pos += end + 1;
    let mut path = PathExpr::parse(regex_src)?;
    loop {
        if c.eat_kw("loop_free") {
            path = path.loop_free();
        } else if c.peek("(") && is_filter_start(c) {
            c.expect("(")?;
            let op = parse_cmp(c)?;
            let op = match op {
                Cmp::Eq => FilterOp::Eq,
                Cmp::Ge => FilterOp::Ge,
                Cmp::Gt => FilterOp::Gt,
                Cmp::Le => FilterOp::Le,
                Cmp::Lt => FilterOp::Lt,
            };
            let bound = if c.eat_kw("shortest") {
                let k = if c.eat("+") {
                    c.number()? as i32
                } else if c.eat("-") {
                    -(c.number()? as i32)
                } else {
                    0
                };
                LengthBound::ShortestPlus(k)
            } else {
                LengthBound::Hops(c.number()?)
            };
            c.expect(")")?;
            path.filters.push(LengthFilter { op, bound });
        } else {
            return Ok(path);
        }
    }
}

/// A '(' begins a length filter (as opposed to closing the enclosing
/// behavior) iff the next char after it is a comparison operator.
fn is_filter_start(c: &mut Cursor) -> bool {
    let save = c.pos;
    let ok =
        c.eat("(") && (c.peek(">=") || c.peek("<=") || c.peek("==") || c.peek(">") || c.peek("<"));
    c.pos = save;
    ok
}

fn parse_faults(c: &mut Cursor) -> Result<FaultSpec, SpecError> {
    if c.eat_kw("any_one") {
        return Ok(FaultSpec::AnyK(1));
    }
    if c.eat_kw("any_two") {
        return Ok(FaultSpec::AnyK(2));
    }
    if c.eat_kw("any_three") {
        return Ok(FaultSpec::AnyK(3));
    }
    if c.eat_kw("any") {
        let k = c.number()?;
        return Ok(FaultSpec::AnyK(k));
    }
    // Explicit scenes: {(A,B) (C,D)} {(E,F)} ...
    let mut scenes = Vec::new();
    while c.eat("{") {
        let mut scene = Vec::new();
        while c.eat("(") {
            let a = c.ident()?.to_string();
            c.expect(",")?;
            let b = c.ident()?.to_string();
            c.expect(")")?;
            scene.push((a, b));
        }
        c.expect("}")?;
        if scene.is_empty() {
            return Err(c.err("empty fault scene"));
        }
        scenes.push(scene);
    }
    if scenes.is_empty() {
        return Err(c.err("expected fault scenes or any_K"));
    }
    Ok(FaultSpec::Scenes(scenes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig2b_invariant() {
        // The paper's Figure 2b example.
        let inv =
            parse_invariant("(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))")
                .unwrap();
        assert_eq!(inv.ingress, vec!["S"]);
        let paths = inv.behavior.path_exprs();
        assert_eq!(paths.len(), 1);
        assert!(paths[0].loop_free);
        assert_eq!(paths[0].source.trim(), "S .* W .* D");
    }

    #[test]
    fn parses_port_constrained_space() {
        let inv = parse_invariant("(dstIP=10.0.1.0/24 && dstPort=80, [S], (exist >= 1, /S .* D/))")
            .unwrap();
        match &inv.packet_space {
            PacketSpace::And(..) => {}
            other => panic!("unexpected space {other:?}"),
        }
    }

    #[test]
    fn parses_negated_port() {
        let inv =
            parse_invariant("(dstIP=10.0.1.0/24 && dstPort!=80, [S], (exist >= 1, /S .* D/))")
                .unwrap();
        let PacketSpace::And(_, rhs) = &inv.packet_space else {
            panic!()
        };
        assert!(matches!(**rhs, PacketSpace::Not(_)));
    }

    #[test]
    fn parses_equal_with_symbolic_filter() {
        let inv = parse_invariant("(*, [S], (equal, /S .* D/ (== shortest)))").unwrap();
        assert!(inv.behavior.has_equal());
        let p = inv.behavior.path_exprs()[0];
        assert!(p.has_symbolic_filter());
    }

    #[test]
    fn parses_compound_behaviors() {
        let inv = parse_invariant(
            "(*, [S], ((exist >= 1, /S .* D/) and (exist == 0, /S .* E/)) \
             or ((exist == 0, /S .* D/) and (exist == 1, /S .* E/)))",
        )
        .unwrap();
        assert!(matches!(inv.behavior, Behavior::Or(..)));
        assert_eq!(inv.behavior.path_exprs().len(), 2);
    }

    #[test]
    fn parses_faults() {
        let inv =
            parse_invariant("(*, [S], (exist >= 1, /S .* D/ (<= shortest+1)), faults: any_two)")
                .unwrap();
        assert_eq!(inv.fault_scenes, FaultSpec::AnyK(2));

        let inv =
            parse_invariant("(*, [S], (exist >= 1, /S .* D/), faults: {(A,B)} {(B,W) (B,D)})")
                .unwrap();
        let FaultSpec::Scenes(s) = &inv.fault_scenes else {
            panic!()
        };
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].len(), 2);
    }

    #[test]
    fn parses_subset_sugar() {
        let inv = parse_invariant("(*, [S], (subset, /S .* D/ loop_free))").unwrap();
        // subset expands to exist>=1 AND covered.
        let Behavior::And(a, b) = &inv.behavior else {
            panic!()
        };
        assert!(matches!(**a, Behavior::Exist { .. }));
        assert!(matches!(**b, Behavior::Covered { .. }));
    }

    #[test]
    fn parses_not() {
        let inv = parse_invariant("(*, [S], not (exist >= 1, /S .* D/))").unwrap();
        assert!(matches!(inv.behavior, Behavior::Not(_)));
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse_invariant("(*, [S] (exist >= 1, /S .* D/))").unwrap_err();
        assert!(err.0.contains("expected"), "{err}");
        assert!(parse_invariant("").is_err());
        assert!(parse_invariant("(*, [], (exist >= 1, /S/))").is_err());
        assert!(parse_invariant("(*, [S], (exist >= 1, /S .* D))").is_err()); // unterminated regex
    }

    #[test]
    fn display_round_trips_through_parse() {
        for text in [
            "(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))",
            "(dstIP=10.0.1.0/24 && dstPort=80, [S], (exist >= 1, /S .* D/))",
            "(dstIP=10.0.1.0/24 && dstPort!=80, [S, B], (exist == 0, /S .* D/ (<= 4)))",
            "(*, [S], (equal, /S .* D/ (== shortest)))",
            "(*, [S], ((exist >= 1, /S .* D/) and (covered, /S .* D/ loop_free)))",
            "(*, [S], (exist >= 1, /S .* D/ (<= shortest+1)), faults: any 2)",
            "(*, [S], not (exist >= 1, /S .* D/ loop_free))",
        ] {
            let inv = parse_invariant(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let printed = inv.to_string();
            let back = parse_invariant(&printed)
                .unwrap_or_else(|e| panic!("printed form {printed:?}: {e}"));
            assert_eq!(inv.packet_space, back.packet_space, "{printed}");
            assert_eq!(inv.behavior, back.behavior, "{printed}");
            assert_eq!(inv.ingress, back.ingress, "{printed}");
            assert_eq!(inv.fault_scenes, back.fault_scenes, "{printed}");
        }
    }

    #[test]
    fn concrete_length_filter() {
        let inv = parse_invariant("(*, [S], (exist >= 1, /S .* D/ (<= 4)))").unwrap();
        assert_eq!(inv.behavior.path_exprs()[0].concrete_hop_bound(), Some(4));
    }
}
