//! Per-universe count sets and the operators of §4.2.
//!
//! A [`Counts`] value records, for one packet set at one DPVNet node, the
//! *set of possible outcomes across universes*: each element is a vector
//! with one entry per path expression of the invariant (most invariants
//! have a single expression, so elements are usually scalars). `ALL`-type
//! forwarding combines children with the cross-product sum ⊗; `ANY`-type
//! forwarding takes the union ⊕ of the children's outcome sets
//! (Equations (1) and (2)).

use std::collections::BTreeSet;
use std::fmt;

/// A count expression `count_exp` of the specification language (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CountExpr {
    /// `== N`
    Eq(u32),
    /// `>= N`
    Ge(u32),
    /// `> N`
    Gt(u32),
    /// `<= N`
    Le(u32),
    /// `< N`
    Lt(u32),
}

impl CountExpr {
    /// `>= n`.
    pub fn ge(n: u32) -> Self {
        CountExpr::Ge(n)
    }

    /// `== n`.
    pub fn eq(n: u32) -> Self {
        CountExpr::Eq(n)
    }

    /// Does a single universe's count satisfy the expression?
    pub fn satisfied(&self, count: u32) -> bool {
        match *self {
            CountExpr::Eq(n) => count == n,
            CountExpr::Ge(n) => count >= n,
            CountExpr::Gt(n) => count > n,
            CountExpr::Le(n) => count <= n,
            CountExpr::Lt(n) => count < n,
        }
    }

    /// The minimal counting information a node must propagate for this
    /// expression (Proposition 1).
    pub fn reduce_mode(&self) -> ReduceMode {
        match self {
            CountExpr::Ge(_) | CountExpr::Gt(_) => ReduceMode::Min,
            CountExpr::Le(_) | CountExpr::Lt(_) => ReduceMode::Max,
            CountExpr::Eq(_) => ReduceMode::TwoSmallest,
        }
    }
}

impl fmt::Display for CountExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountExpr::Eq(n) => write!(f, "== {n}"),
            CountExpr::Ge(n) => write!(f, ">= {n}"),
            CountExpr::Gt(n) => write!(f, "> {n}"),
            CountExpr::Le(n) => write!(f, "<= {n}"),
            CountExpr::Lt(n) => write!(f, "< {n}"),
        }
    }
}

/// How a node shrinks its count set before propagating it upstream
/// (Proposition 1: the *minimal counting information*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceMode {
    /// Send everything (used for compound, multi-expression invariants,
    /// where reductions do not commute with the behavior formula).
    None,
    /// Send only the minimum (sufficient for `>= N` / `> N`).
    Min,
    /// Send only the maximum (sufficient for `<= N` / `< N`).
    Max,
    /// Send the two smallest elements (sufficient for `== N`).
    TwoSmallest,
}

/// A set of per-universe outcome vectors.
///
/// Invariants maintained: elements are unique and sorted (BTreeSet),
/// every element has length `dim`, and the set is never empty (an empty
/// outcome set is meaningless — "no universes" — so constructors always
/// produce at least one element).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Counts {
    dim: usize,
    elems: BTreeSet<Vec<u32>>,
}

impl tulkun_json::ToJson for Counts {
    fn to_json(&self) -> tulkun_json::Json {
        tulkun_json::Json::Object(vec![
            ("dim".to_string(), tulkun_json::ToJson::to_json(&self.dim)),
            (
                "elems".to_string(),
                tulkun_json::ToJson::to_json(&self.elems),
            ),
        ])
    }
}

impl tulkun_json::FromJson for Counts {
    fn from_json(v: &tulkun_json::Json) -> Result<Self, tulkun_json::JsonError> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| tulkun_json::JsonError::missing_field(name))
        };
        let dim: usize = tulkun_json::FromJson::from_json(field("dim")?)?;
        let elems: BTreeSet<Vec<u32>> = tulkun_json::FromJson::from_json(field("elems")?)?;
        if elems.is_empty() {
            return Err(tulkun_json::JsonError::new("empty outcome set"));
        }
        if elems.iter().any(|e| e.len() != dim) {
            return Err(tulkun_json::JsonError::new("outcome vector dim mismatch"));
        }
        Ok(Counts { dim, elems })
    }
}

impl Counts {
    /// The "nothing delivered" outcome: a single all-zero vector.
    pub fn zero(dim: usize) -> Counts {
        let mut elems = BTreeSet::new();
        elems.insert(vec![0; dim]);
        Counts { dim, elems }
    }

    /// A single fixed outcome vector.
    pub fn single(vec: Vec<u32>) -> Counts {
        assert!(!vec.is_empty(), "outcome vectors must have dim >= 1");
        let dim = vec.len();
        let mut elems = BTreeSet::new();
        elems.insert(vec);
        Counts { dim, elems }
    }

    /// A scalar outcome set (dim 1) from the given counts.
    pub fn scalars(counts: impl IntoIterator<Item = u32>) -> Counts {
        let elems: BTreeSet<Vec<u32>> = counts.into_iter().map(|c| vec![c]).collect();
        assert!(!elems.is_empty(), "scalar outcome set may not be empty");
        Counts { dim: 1, elems }
    }

    /// The unit vector `e_i` scaled by acceptance flags: 1 in every
    /// position where `accept[i]`, 0 elsewhere.
    pub fn accept_base(accept: &[bool]) -> Counts {
        Counts::single(accept.iter().map(|&a| u32::from(a)).collect())
    }

    /// Vector dimension (number of path expressions).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct universes outcomes.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Always false (outcome sets are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the outcome vectors.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<u32>> {
        self.elems.iter()
    }

    /// Is this exactly the all-zero singleton?
    pub fn is_zero(&self) -> bool {
        self.elems.len() == 1 && self.elems.iter().next().unwrap().iter().all(|&c| c == 0)
    }

    /// The cross-product sum ⊗ (Equation (1)): with `ALL`-type
    /// replication, every combination of child universes co-occurs and
    /// counts add.
    pub fn cross_sum(&self, other: &Counts) -> Counts {
        assert_eq!(self.dim, other.dim, "dimension mismatch in ⊗");
        let mut elems = BTreeSet::new();
        for a in &self.elems {
            for b in &other.elems {
                elems.insert(a.iter().zip(b).map(|(x, y)| x + y).collect());
            }
        }
        Counts {
            dim: self.dim,
            elems,
        }
    }

    /// The union ⊕ (Equation (2)): with `ANY`-type selection, each child
    /// outcome is a separate universe.
    pub fn union(&self, other: &Counts) -> Counts {
        assert_eq!(self.dim, other.dim, "dimension mismatch in ⊕");
        let mut elems = self.elems.clone();
        elems.extend(other.elems.iter().cloned());
        Counts {
            dim: self.dim,
            elems,
        }
    }

    /// Applies a minimal-information reduction (Proposition 1). Only
    /// meaningful for scalar sets; vector sets pass through unchanged.
    pub fn reduce(&self, mode: ReduceMode) -> Counts {
        if self.dim != 1 || self.elems.len() <= 1 {
            return self.clone();
        }
        let mut elems = BTreeSet::new();
        match mode {
            ReduceMode::None => return self.clone(),
            ReduceMode::Min => {
                elems.insert(self.elems.iter().next().unwrap().clone());
            }
            ReduceMode::Max => {
                elems.insert(self.elems.iter().next_back().unwrap().clone());
            }
            ReduceMode::TwoSmallest => {
                for e in self.elems.iter().take(2) {
                    elems.insert(e.clone());
                }
            }
        }
        Counts { dim: 1, elems }
    }

    /// Checks a scalar count expression against *every* universe
    /// (Tulkun verifies invariants across all universes, §2.1).
    /// `idx` selects the vector component (the path expression).
    pub fn all_satisfy(&self, idx: usize, expr: &CountExpr) -> bool {
        self.elems.iter().all(|v| expr.satisfied(v[idx]))
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if self.dim == 1 {
                write!(f, "{}", v[0])?;
            } else {
                write!(f, "{v:?}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_sum_matches_paper_example() {
        // W2 in Fig. 2c: downstream counts [1] from D1; W only forwards to
        // D, so its count is [1], not the sum with B2.
        let d1 = Counts::scalars([1]);
        let base = Counts::zero(1);
        assert_eq!(base.cross_sum(&d1), Counts::scalars([1]));
    }

    #[test]
    fn union_matches_paper_example() {
        // A1 in Fig. 2c for P3: B1 gives [0], W3 gives [1]; ANY-type →
        // [0, 1].
        let b1 = Counts::scalars([0]);
        let w3 = Counts::scalars([1]);
        assert_eq!(b1.union(&w3), Counts::scalars([0, 1]));
    }

    #[test]
    fn cross_sum_of_sets_is_pairwise() {
        let a = Counts::scalars([0, 1]);
        let b = Counts::scalars([1, 2]);
        // {0,1} ⊗ {1,2} = {1, 2, 3} (2 appears twice, sets dedupe).
        assert_eq!(a.cross_sum(&b), Counts::scalars([1, 2, 3]));
    }

    #[test]
    fn operators_are_commutative_and_associative() {
        let a = Counts::scalars([0, 2]);
        let b = Counts::scalars([1]);
        let c = Counts::scalars([0, 1]);
        assert_eq!(a.cross_sum(&b), b.cross_sum(&a));
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.cross_sum(&b).cross_sum(&c), a.cross_sum(&b.cross_sum(&c)));
        assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn zero_is_identity_for_cross_sum() {
        let a = Counts::scalars([3, 5]);
        assert_eq!(a.cross_sum(&Counts::zero(1)), a);
    }

    #[test]
    fn reductions() {
        let a = Counts::scalars([2, 5, 9]);
        assert_eq!(a.reduce(ReduceMode::Min), Counts::scalars([2]));
        assert_eq!(a.reduce(ReduceMode::Max), Counts::scalars([9]));
        assert_eq!(a.reduce(ReduceMode::TwoSmallest), Counts::scalars([2, 5]));
        assert_eq!(a.reduce(ReduceMode::None), a);
        let single = Counts::scalars([4]);
        assert_eq!(single.reduce(ReduceMode::TwoSmallest), single);
    }

    #[test]
    fn reduction_preserves_ge_verdict() {
        // Prop 1: min is sufficient for >= N.
        let expr = CountExpr::ge(1);
        for set in [vec![0, 1], vec![1, 2, 3], vec![0], vec![2]] {
            let full = Counts::scalars(set.clone());
            let red = full.reduce(ReduceMode::Min);
            assert_eq!(
                full.all_satisfy(0, &expr),
                red.all_satisfy(0, &expr),
                "set {set:?}"
            );
        }
    }

    #[test]
    fn reduction_preserves_eq_verdict() {
        let expr = CountExpr::eq(1);
        for set in [
            vec![1],
            vec![1, 1],
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![0],
        ] {
            let full = Counts::scalars(set.clone());
            let red = full.reduce(ReduceMode::TwoSmallest);
            assert_eq!(
                full.all_satisfy(0, &expr),
                red.all_satisfy(0, &expr),
                "set {set:?}"
            );
        }
    }

    #[test]
    fn vector_counts_for_compound_invariants() {
        // Fig. 5b: D1 = (1, 0), E1 = (0, 1); S picks one of them (ANY).
        let d1 = Counts::single(vec![1, 0]);
        let e1 = Counts::single(vec![0, 1]);
        let s = d1.union(&e1);
        assert_eq!(s.len(), 2);
        // Anycast holds: in each universe exactly one of the two is 1.
        for v in s.iter() {
            assert_eq!(v.iter().sum::<u32>(), 1);
        }
        // The *incorrect* strawman (cross product of separate DPVNets)
        // would contain (0,0) and (1,1) — ⊗ shows why.
        let wrong = Counts::scalars([0, 1]);
        let cross = wrong.cross_sum(&Counts::scalars([0, 1]));
        assert!(cross.iter().any(|v| v[0] == 0) && cross.iter().any(|v| v[0] == 2));
    }

    #[test]
    fn count_expr_semantics() {
        assert!(CountExpr::Ge(1).satisfied(1));
        assert!(!CountExpr::Ge(1).satisfied(0));
        assert!(CountExpr::Gt(1).satisfied(2));
        assert!(!CountExpr::Gt(1).satisfied(1));
        assert!(CountExpr::Le(2).satisfied(2));
        assert!(!CountExpr::Le(2).satisfied(3));
        assert!(CountExpr::Lt(1).satisfied(0));
        assert!(CountExpr::Eq(0).satisfied(0));
        assert!(!CountExpr::Eq(0).satisfied(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Counts::scalars([0, 1]).to_string(), "[0, 1]");
        assert_eq!(CountExpr::ge(1).to_string(), ">= 1");
    }
}
