//! Backend agreement on LEC classification.
//!
//! The Delta-net and interval-set encodings started life in this crate
//! as centralized baselines; promoted to on-device backends, they must
//! classify *any* destination-prefix FIB exactly like the BDD backend:
//! same equivalence classes in the same order, same action per class,
//! and byte-identical exported wire predicates (the invariant that
//! keeps the DVM protocol and the shared LEC cache backend-neutral).

use proptest::prelude::*;
use tulkun_bdd::serial::PortablePred;
use tulkun_bdd::HeaderLayout;
use tulkun_netmodel::fib::{Action, Fib, MatchSpec, Rule};
use tulkun_netmodel::prefix::IpPrefix;
use tulkun_netmodel::DeviceId;
use tulkun_predicate::{lecs, BackendKind, DynBackend, PredicateBackend};

fn rule_strategy() -> impl Strategy<Value = Rule> {
    (any::<u32>(), 0u8..=32, 0u8..4, 1u32..16).prop_map(|(addr, len, act, priority)| Rule {
        priority,
        matches: MatchSpec::dst(IpPrefix::new(addr, len)),
        action: match act {
            0 => Action::Drop,
            1 => Action::deliver(),
            n => Action::fwd(DeviceId(n as u32)),
        },
    })
}

/// The FIB's exported LEC table on one backend: `(wire bytes, action)`
/// per class, in classification order.
fn classify(fib: &Fib, kind: BackendKind) -> Vec<(PortablePred, Action)> {
    let mut be = DynBackend::new(kind, HeaderLayout::ipv4_tcp());
    lecs(fib, &mut be)
        .into_iter()
        .map(|(p, a)| (be.export(p), a))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn promoted_backends_classify_like_bdd(rules in proptest::collection::vec(rule_strategy(), 0..24)) {
        let mut fib = Fib::new();
        for r in rules {
            fib.insert(r);
        }
        let reference = classify(&fib, BackendKind::Bdd);
        for kind in [BackendKind::DeltaNet, BackendKind::Intervals] {
            let got = classify(&fib, kind);
            prop_assert_eq!(
                reference.len(),
                got.len(),
                "{} produced a different number of classes",
                kind
            );
            for (i, (b, o)) in reference.iter().zip(&got).enumerate() {
                prop_assert_eq!(&b.1, &o.1, "{} class {} action diverged", kind, i);
                prop_assert_eq!(
                    b.0.wire_bytes(),
                    o.0.wire_bytes(),
                    "{} class {} wire size diverged",
                    kind,
                    i
                );
                prop_assert!(b.0 == o.0, "{} class {} wire bytes diverged", kind, i);
            }
        }
    }
}
