//! Atomic-predicates baselines: AP (Yang & Lam) and APKeep (Zhang et
//! al.). Both represent packet sets as BDDs and partition the header
//! space into *atomic predicates*; they differ in how updates are
//! handled — AP re-derives the atom set, APKeep maintains it
//! incrementally.

use crate::common::{reach_set, BaselineReport, CentralizedDpv, Workload};
use tulkun_bdd::{BddManager, HeaderLayout, Pred};
use tulkun_netmodel::fib::Action;
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::DeviceId;

/// A resolved per-atom action (device next hops + external delivery).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct AtomAction {
    next_hops: Vec<DeviceId>,
    delivers: bool,
}

impl AtomAction {
    fn from_action(a: &Action) -> AtomAction {
        AtomAction {
            next_hops: a.device_next_hops(),
            delivers: a.delivers_external(),
        }
    }
}

struct State {
    mgr: BddManager,
    layout: HeaderLayout,
    /// The atomic predicates (a partition of the header space).
    atoms: Vec<Pred>,
    /// Per distinct match predicate: the atoms inside it (AP represents
    /// every packet set as a set of atom indices).
    pred_atoms: std::collections::HashMap<Pred, Vec<usize>>,
    /// `table[device][atom]`.
    table: Vec<Vec<AtomAction>>,
    net: Network,
    workload: Workload,
    /// Per workload pair: the atoms inside its prefix.
    pair_atoms: Vec<Vec<usize>>,
}

impl State {
    fn build(net: &Network, workload: &Workload) -> State {
        let layout = net.layout;
        let mut mgr = BddManager::new(layout.num_vars());
        // Distinct match predicates from every rule plus workload
        // prefixes.
        let mut preds: Vec<Pred> = Vec::new();
        let mut seen: std::collections::HashSet<Pred> = std::collections::HashSet::new();
        for fib in &net.fibs {
            for rule in fib.rules() {
                let p = rule.matches.to_pred(&mut mgr, &layout);
                if seen.insert(p) {
                    preds.push(p);
                }
            }
        }
        for (_, prefix) in &workload.pairs {
            let p = prefix.to_pred(&mut mgr, &layout);
            if seen.insert(p) {
                preds.push(p);
            }
        }
        let full = mgr.verum();
        let atoms = refine(&mut mgr, vec![full], &preds);
        // Index every predicate as its atom set (the AP representation).
        let mut pred_atoms = std::collections::HashMap::new();
        for &p in &preds {
            let inside: Vec<usize> = atoms
                .iter()
                .enumerate()
                .filter(|(_, &a)| mgr.implies(a, p))
                .map(|(i, _)| i)
                .collect();
            pred_atoms.insert(p, inside);
        }
        let mut st = State {
            mgr,
            layout,
            atoms,
            pred_atoms,
            table: Vec::new(),
            net: net.clone(),
            workload: workload.clone(),
            pair_atoms: Vec::new(),
        };
        st.paint_all();
        st.index_pairs();
        st
    }

    /// Paints every device's per-atom action.
    fn paint_all(&mut self) {
        let n = self.net.topology.num_devices();
        self.table = (0..n)
            .map(|d| self.paint_device(DeviceId(d as u32)))
            .collect();
    }

    fn paint_device(&mut self, dev: DeviceId) -> Vec<AtomAction> {
        let fib = self.net.fib(dev).clone();
        let mut out = vec![AtomAction::default(); self.atoms.len()];
        // Paint ascending priority so higher priorities overwrite; each
        // rule's atom set comes from the shared index.
        for rule in fib.rules().iter().rev() {
            let mp = rule.matches.to_pred(&mut self.mgr, &self.layout);
            let act = AtomAction::from_action(&rule.action);
            if let Some(ids) = self.pred_atoms.get(&mp) {
                for &i in ids {
                    out[i] = act.clone();
                }
            } else {
                // Predicate unseen at build time (possible after an
                // APKeep split): fall back to implication tests and
                // memoize.
                let ids: Vec<usize> = self
                    .atoms
                    .iter()
                    .enumerate()
                    .filter(|(_, &a)| self.mgr.implies(a, mp))
                    .map(|(i, _)| i)
                    .collect();
                for &i in &ids {
                    out[i] = act.clone();
                }
                self.pred_atoms.insert(mp, ids);
            }
        }
        out
    }

    fn index_pairs(&mut self) {
        self.pair_atoms = self
            .workload
            .pairs
            .clone()
            .iter()
            .map(|(_, prefix)| {
                let pp = prefix.to_pred(&mut self.mgr, &self.layout);
                self.atoms
                    .iter()
                    .enumerate()
                    .filter(|(_, &a)| self.mgr.implies(a, pp))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
    }

    fn verify(&self, filter: Option<&[usize]>) -> BaselineReport {
        let n = self.net.topology.num_devices();
        let mut report = BaselineReport::default();
        for (pi, (dst, _)) in self.workload.pairs.iter().enumerate() {
            for &atom in &self.pair_atoms[pi] {
                if let Some(f) = filter {
                    if !f.contains(&atom) {
                        continue;
                    }
                }
                report.classes += 1;
                let edges: Vec<Vec<DeviceId>> = self
                    .table
                    .iter()
                    .map(|col| col[atom].next_hops.clone())
                    .collect();
                let delivered = self.table[dst.idx()][atom].delivers;
                let reached = reach_set(n, &edges, *dst);
                for d in self.net.topology.devices() {
                    if d == *dst {
                        continue;
                    }
                    report.checked += 1;
                    if !delivered || !reached[d.idx()] {
                        report.violations += 1;
                    }
                }
            }
        }
        report
    }

    fn memory_bytes(&self) -> usize {
        self.mgr.node_count() * 16
            + self
                .table
                .iter()
                .map(|col| {
                    col.iter()
                        .map(|a| 32 + 4 * a.next_hops.len())
                        .sum::<usize>()
                })
                .sum::<usize>()
    }
}

/// Refines a partition with a predicate list.
fn refine(mgr: &mut BddManager, start: Vec<Pred>, preds: &[Pred]) -> Vec<Pred> {
    let mut atoms = start;
    for &p in preds {
        let mut next = Vec::with_capacity(atoms.len() + 8);
        for &a in &atoms {
            let inside = mgr.and(a, p);
            if mgr.is_false(inside) {
                next.push(a);
                continue;
            }
            let outside = mgr.diff(a, p);
            next.push(inside);
            if !mgr.is_false(outside) {
                next.push(outside);
            }
        }
        atoms = next;
    }
    atoms
}

/// The AP baseline: snapshot verification with BDD atomic predicates;
/// updates re-derive atoms and repaint every device.
#[derive(Default)]
pub struct Ap {
    st: Option<State>,
}

impl Ap {
    /// Fresh instance.
    pub fn new() -> Self {
        Ap { st: None }
    }
}

impl CentralizedDpv for Ap {
    fn name(&self) -> &'static str {
        "AP"
    }

    fn verify_burst(&mut self, net: &Network, workload: &Workload) -> BaselineReport {
        let st = State::build(net, workload);
        let r = st.verify(None);
        self.st = Some(st);
        r
    }

    fn apply_update(&mut self, update: &RuleUpdate) -> BaselineReport {
        let st = self.st.as_mut().expect("verify_burst first");
        st.net.apply(update);
        // AP has no incremental atom maintenance: rebuild.
        let rebuilt = State::build(&st.net.clone(), &st.workload.clone());
        *st = rebuilt;
        // Re-verify the pairs overlapping the update.
        let prefix = match update {
            RuleUpdate::Insert { rule, .. } => rule.matches.dst,
            RuleUpdate::Remove { matches, .. } => matches.dst,
        };
        let affected: Vec<usize> = {
            let pp = prefix.to_pred(&mut st.mgr, &st.layout);
            st.atoms
                .iter()
                .enumerate()
                .filter(|(_, &a)| st.mgr.intersects(a, pp))
                .map(|(i, _)| i)
                .collect()
        };
        st.verify(Some(&affected))
    }

    fn reverify(&mut self) -> BaselineReport {
        self.st.as_ref().expect("verify_burst first").verify(None)
    }

    fn memory_bytes(&self) -> usize {
        self.st.as_ref().map(State::memory_bytes).unwrap_or(0)
    }
}

/// The APKeep baseline: maintains the atom partition incrementally —
/// an update splits only the atoms its predicate cuts, repaints only the
/// updated device, and re-verifies only the affected atoms.
#[derive(Default)]
pub struct ApKeep {
    st: Option<State>,
}

impl ApKeep {
    /// Fresh instance.
    pub fn new() -> Self {
        ApKeep { st: None }
    }
}

impl CentralizedDpv for ApKeep {
    fn name(&self) -> &'static str {
        "APKeep"
    }

    fn verify_burst(&mut self, net: &Network, workload: &Workload) -> BaselineReport {
        let st = State::build(net, workload);
        let r = st.verify(None);
        self.st = Some(st);
        r
    }

    fn apply_update(&mut self, update: &RuleUpdate) -> BaselineReport {
        let st = self.st.as_mut().expect("verify_burst first");
        st.net.apply(update);
        let dev = update.device();
        let (matches,) = match update {
            RuleUpdate::Insert { rule, .. } => (rule.matches,),
            RuleUpdate::Remove { matches, .. } => (*matches,),
        };
        let mp = matches.to_pred(&mut st.mgr, &st.layout);

        // Incrementally split atoms cut by the new predicate; duplicate
        // table columns and pair indices accordingly.
        let mut affected: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < st.atoms.len() {
            let a = st.atoms[i];
            let inside = st.mgr.and(a, mp);
            if st.mgr.is_false(inside) {
                i += 1;
                continue;
            }
            let outside = st.mgr.diff(a, mp);
            if st.mgr.is_false(outside) {
                affected.push(i);
                i += 1;
                continue;
            }
            // Split: atom i becomes `inside`; `outside` is appended
            // right after, inheriting the action rows.
            st.atoms[i] = inside;
            st.atoms.insert(i + 1, outside);
            for col in &mut st.table {
                let row = col[i].clone();
                col.insert(i + 1, row);
            }
            for pa in &mut st.pair_atoms {
                let mut add = Vec::new();
                for idx in pa.iter_mut() {
                    if *idx > i {
                        *idx += 1;
                    } else if *idx == i {
                        add.push(i + 1);
                    }
                }
                pa.extend(add);
            }
            affected.push(i);
            i += 2;
        }

        // Atom indices shifted: the predicate→atoms index is stale.
        st.pred_atoms.clear();
        // Repaint only the updated device on the affected atoms.
        let painted = st.paint_device(dev);
        for &a in &affected {
            st.table[dev.idx()][a] = painted[a].clone();
        }
        st.verify(Some(&affected))
    }

    fn reverify(&mut self) -> BaselineReport {
        self.st.as_ref().expect("verify_burst first").verify(None)
    }

    fn memory_bytes(&self) -> usize {
        self.st.as_ref().map(State::memory_bytes).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_datasets::{by_name, Scale};
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};

    fn blackhole_update(net: &Network) -> (RuleUpdate, usize) {
        let (dst, prefix) = net.topology.external_map().next().unwrap();
        let victim = net.topology.devices().find(|v| *v != dst).unwrap();
        (
            RuleUpdate::Insert {
                device: victim,
                rule: Rule {
                    priority: 99,
                    matches: MatchSpec::dst(prefix),
                    action: Action::Drop,
                },
            },
            victim.idx(),
        )
    }

    #[test]
    fn ap_burst_and_update() {
        let d = by_name("INet2", Scale::Tiny).unwrap();
        let wl = Workload::all_pairs(&d.network);
        let mut tool = Ap::new();
        let burst = tool.verify_burst(&d.network, &wl);
        assert_eq!(burst.violations, 0);
        assert!(burst.classes >= wl.pairs.len());
        let (u, _) = blackhole_update(&d.network);
        let r = tool.apply_update(&u);
        assert!(r.violations > 0);
    }

    #[test]
    fn apkeep_burst_and_update_agree_with_ap() {
        let d = by_name("B4-13", Scale::Tiny).unwrap();
        let wl = Workload::all_pairs(&d.network);
        let mut ap = Ap::new();
        let mut apk = ApKeep::new();
        let b1 = ap.verify_burst(&d.network, &wl);
        let b2 = apk.verify_burst(&d.network, &wl);
        assert_eq!(b1.violations, b2.violations);

        let (u, _) = blackhole_update(&d.network);
        let r1 = ap.apply_update(&u);
        let r2 = apk.apply_update(&u);
        assert_eq!(r1.violations > 0, r2.violations > 0);
        // APKeep touches no more classes than AP.
        assert!(r2.classes <= r1.classes);
    }

    #[test]
    fn apkeep_subprefix_split() {
        let d = by_name("INet2", Scale::Tiny).unwrap();
        let wl = Workload::all_pairs(&d.network);
        let mut apk = ApKeep::new();
        apk.verify_burst(&d.network, &wl);
        let atoms_before = apk.st.as_ref().unwrap().atoms.len();
        // Insert a /26 drop: splits one atom.
        let (_, prefix) = d.network.topology.external_map().next().unwrap();
        let (sub, _) = prefix.split();
        let (sub, _) = sub.split();
        let dev = d.network.topology.devices().next().unwrap();
        let r = apk.apply_update(&RuleUpdate::Insert {
            device: dev,
            rule: Rule {
                priority: 99,
                matches: MatchSpec::dst(sub),
                action: Action::Drop,
            },
        });
        let atoms_after = apk.st.as_ref().unwrap().atoms.len();
        assert!(atoms_after > atoms_before);
        assert!(r.classes >= 1);
        // The drop at a transit device is a violation for the /26.
        assert!(r.violations > 0);
    }
}
