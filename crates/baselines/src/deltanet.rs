//! Delta-net-style baseline: persistent IP-interval *atoms* with a
//! per-atom, per-device action table. Incremental updates split atoms in
//! place and repaint only the updated device — fast updates at the price
//! of an atoms × devices table (the memory-out of the paper's NGDC run).

use crate::common::{reach_set, BaselineReport, CentralizedDpv, Workload};
use crate::intervals::{paint_device, AtomAction, IntervalAtoms};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::DeviceId;

/// The Delta-net baseline.
#[derive(Default)]
pub struct DeltaNet {
    atoms: IntervalAtoms,
    /// `table[atom][device]`.
    table: Vec<Vec<AtomAction>>,
    net: Option<Network>,
    workload: Workload,
}

impl DeltaNet {
    /// Fresh instance.
    pub fn new() -> Self {
        DeltaNet {
            atoms: IntervalAtoms::new(),
            table: Vec::new(),
            net: None,
            workload: Workload { pairs: Vec::new() },
        }
    }

    /// Verifies the workload restricted to an atom set (`None` = all).
    fn verify_atoms(&self, filter: Option<&[usize]>) -> BaselineReport {
        let net = self.net.as_ref().expect("verify_burst first");
        let n = net.topology.num_devices();
        let mut report = BaselineReport::default();
        for (dst, prefix) in &self.workload.pairs {
            for atom in self.atoms.atoms_of(prefix) {
                if let Some(f) = filter {
                    if !f.contains(&atom) {
                        continue;
                    }
                }
                report.classes += 1;
                let row = &self.table[atom];
                let edges: Vec<Vec<DeviceId>> = row.iter().map(|a| a.next_hops.clone()).collect();
                let delivered = row[dst.idx()].delivers;
                let reached = reach_set(n, &edges, *dst);
                for d in net.topology.devices() {
                    if d == *dst {
                        continue;
                    }
                    report.checked += 1;
                    if !delivered || !reached[d.idx()] {
                        report.violations += 1;
                    }
                }
            }
        }
        report
    }
}

impl CentralizedDpv for DeltaNet {
    fn name(&self) -> &'static str {
        "Delta-net"
    }

    fn verify_burst(&mut self, net: &Network, workload: &Workload) -> BaselineReport {
        // Atoms from every rule's destination prefix plus the workload's.
        let rule_prefixes = net
            .fibs
            .iter()
            .flat_map(|f| f.rules().iter().map(|r| &r.matches.dst));
        let wl_prefixes = workload.pairs.iter().map(|(_, p)| p);
        let all: Vec<_> = rule_prefixes.chain(wl_prefixes).cloned().collect();
        self.atoms = IntervalAtoms::from_prefixes(all.iter());

        // Paint all devices, then transpose to atom-major.
        let per_dev: Vec<Vec<AtomAction>> = net
            .fibs
            .iter()
            .map(|f| paint_device(&self.atoms, f))
            .collect();
        let n_atoms = self.atoms.len();
        self.table = (0..n_atoms)
            .map(|a| per_dev.iter().map(|col| col[a].clone()).collect())
            .collect();
        self.net = Some(net.clone());
        self.workload = workload.clone();
        self.verify_atoms(None)
    }

    fn apply_update(&mut self, update: &RuleUpdate) -> BaselineReport {
        let net = self.net.as_mut().expect("verify_burst first");
        net.apply(update);
        let dev = update.device();
        let prefix = match update {
            RuleUpdate::Insert { rule, .. } => rule.matches.dst,
            RuleUpdate::Remove { matches, .. } => matches.dst,
        };
        // Split atoms in place; duplicate table rows accordingly.
        for e in self.atoms.insert(&prefix) {
            let row = self.table[e].clone();
            self.table.insert(e, row);
        }
        // Repaint only the updated device over the touched atoms.
        let range = self.atoms.atoms_of(&prefix);
        let fib = self.net.as_ref().unwrap().fib(dev).clone();
        let painted = paint_device(&self.atoms, &fib);
        let affected: Vec<usize> = range.collect();
        for &a in &affected {
            self.table[a][dev.idx()] = painted[a].clone();
        }
        self.verify_atoms(Some(&affected))
    }

    fn reverify(&mut self) -> BaselineReport {
        self.verify_atoms(None)
    }

    fn memory_bytes(&self) -> usize {
        // Per cell: the Vec header + hops; the dominant cost at scale.
        self.table
            .iter()
            .map(|row| {
                row.iter()
                    .map(|a| 32 + 4 * a.next_hops.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_datasets::{by_name, rule_updates, Scale};
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
    use tulkun_netmodel::routing::InjectedError;

    #[test]
    fn clean_network_verifies() {
        let d = by_name("INet2", Scale::Tiny).unwrap();
        let wl = Workload::all_pairs(&d.network);
        let mut tool = DeltaNet::new();
        let report = tool.verify_burst(&d.network, &wl);
        assert_eq!(report.violations, 0, "clean dataset must verify");
        assert!(report.checked > 0);
        assert!(tool.memory_bytes() > 0);
    }

    #[test]
    fn blackhole_is_detected() {
        let d = by_name("INet2", Scale::Tiny).unwrap();
        let mut net = d.network.clone();
        let (dst, prefix) = net.topology.external_map().next().unwrap();
        // Blackhole at a device that routes toward dst.
        let victim = net.topology.devices().find(|v| *v != dst).unwrap();
        tulkun_netmodel::routing::inject_errors(
            &mut net,
            &[InjectedError::Blackhole {
                device: victim,
                prefix,
            }],
        );
        let wl = Workload::all_pairs(&net);
        let mut tool = DeltaNet::new();
        let report = tool.verify_burst(&net, &wl);
        assert!(report.violations > 0, "blackhole must be detected");
    }

    #[test]
    fn incremental_update_detects_new_drop() {
        let d = by_name("B4-13", Scale::Tiny).unwrap();
        let wl = Workload::all_pairs(&d.network);
        let mut tool = DeltaNet::new();
        assert_eq!(tool.verify_burst(&d.network, &wl).violations, 0);

        // Drop one announced /24 at a transit device.
        let (dst, prefix) = d.network.topology.external_map().next().unwrap();
        let victim = d.network.topology.devices().find(|v| *v != dst).unwrap();
        let update = RuleUpdate::Insert {
            device: victim,
            rule: Rule {
                priority: 99,
                matches: MatchSpec::dst(prefix),
                action: Action::Drop,
            },
        };
        let report = tool.apply_update(&update);
        assert!(report.violations > 0);
        // The incremental check looked at far fewer classes than burst.
        assert!(report.classes <= 4);
    }

    #[test]
    fn random_update_stream_applies() {
        let d = by_name("INet2", Scale::Tiny).unwrap();
        let wl = Workload::all_pairs(&d.network);
        let mut tool = DeltaNet::new();
        tool.verify_burst(&d.network, &wl);
        for u in rule_updates(&d.network, 50, 3) {
            tool.apply_update(&u);
        }
    }
}
