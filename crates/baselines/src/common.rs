//! Shared baseline machinery: the verification workload, the report, and
//! the trait all baselines implement.

use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::topology::DeviceId;
use tulkun_netmodel::IpPrefix;

/// The standard evaluation workload: all-pair reachability — every
/// device must reach every announced `(destination, prefix)` pair,
/// without loops or blackholes.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// `(destination device, announced prefix)` pairs.
    pub pairs: Vec<(DeviceId, IpPrefix)>,
}

impl Workload {
    /// All-pair reachability over a network's external-port map.
    pub fn all_pairs(net: &Network) -> Workload {
        let mut pairs: Vec<(DeviceId, IpPrefix)> = net.topology.external_map().collect();
        pairs.sort();
        Workload { pairs }
    }
}

/// The outcome of one (full or incremental) verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselineReport {
    /// `(packet class, source)` pairs that cannot reach their
    /// destination.
    pub violations: usize,
    /// `(packet class, source)` pairs checked.
    pub checked: usize,
    /// Packet classes (ECs/atoms) examined.
    pub classes: usize,
}

impl BaselineReport {
    /// Merges another report into this one.
    pub fn absorb(&mut self, other: BaselineReport) {
        self.violations += other.violations;
        self.checked += other.checked;
        self.classes += other.classes;
    }
}

/// The interface every centralized baseline implements.
pub trait CentralizedDpv {
    /// Tool name as used in the figures.
    fn name(&self) -> &'static str;

    /// Ingest a full snapshot and verify the workload (burst update).
    fn verify_burst(&mut self, net: &Network, workload: &Workload) -> BaselineReport;

    /// Apply one rule update and incrementally re-verify what it
    /// affects. Must be called after `verify_burst`.
    fn apply_update(&mut self, update: &RuleUpdate) -> BaselineReport;

    /// Re-verify the whole workload on the cached state without
    /// re-ingesting rules (used after topology-only events, §9.3.4:
    /// "when there is no rule update in fault scenes, centralized DPVs
    /// do not need to update their ECs").
    fn reverify(&mut self) -> BaselineReport;

    /// Approximate resident memory of the tool's data structures, in
    /// bytes (used for the memory-out comparisons).
    fn memory_bytes(&self) -> usize;
}

/// Reverse-BFS reachability for one packet class: which devices reach
/// `dst`, given each device's next hops for the class. Devices caught in
/// loops or blackholes simply never enter the reached set.
pub fn reach_set(num_devices: usize, edges: &[Vec<DeviceId>], dst: DeviceId) -> Vec<bool> {
    // reverse adjacency
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); num_devices];
    for (u, hops) in edges.iter().enumerate() {
        for v in hops {
            rev[v.idx()].push(u as u32);
        }
    }
    let mut reached = vec![false; num_devices];
    reached[dst.idx()] = true;
    let mut stack = vec![dst.0];
    while let Some(v) = stack.pop() {
        for &u in &rev[v as usize] {
            if !reached[u as usize] {
                reached[u as usize] = true;
                stack.push(u);
            }
        }
    }
    reached
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reach_set_handles_loops_and_blackholes() {
        // 0 → 1 → 2(dst); 3 → 4 → 3 (loop); 5 drops (no hops).
        let edges: Vec<Vec<DeviceId>> = vec![
            vec![DeviceId(1)],
            vec![DeviceId(2)],
            vec![],
            vec![DeviceId(4)],
            vec![DeviceId(3)],
            vec![],
        ];
        let r = reach_set(6, &edges, DeviceId(2));
        assert_eq!(r, vec![true, true, true, false, false, false]);
    }
}
