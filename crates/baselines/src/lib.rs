#![warn(missing_docs)]
//! Centralized data plane verification baselines.
//!
//! From-scratch reimplementations of the five tools the paper compares
//! against (§9.3.1), each exercising its published core algorithm:
//!
//! * [`ap::Ap`] — atomic predicates computed with BDDs (Yang & Lam);
//!   rule updates re-derive the affected device's atom actions and
//!   re-verify every atom of the touched packet space.
//! * [`ap::ApKeep`] — incremental atomic-predicate maintenance (APKeep):
//!   updates refine the atom set in place and re-verify only affected
//!   atoms.
//! * [`deltanet::DeltaNet`] — IP-interval *atoms* over the destination
//!   space with a persistent per-atom forwarding-edge table — fast
//!   incremental updates, heavy memory (the paper's memory-out on NGDC).
//! * [`veriflow::VeriFlow`] — per-update equivalence classes computed
//!   from the overlapping rules (trie-style), with per-EC forwarding
//!   graph traversal.
//! * [`flash::Flash`] — batch EC computation (fast bursts), plus the
//!   *early detection* mode that verifies with incomplete information,
//!   reproducing the §1 experiment where missing devices hide errors.
//!
//! All baselines verify the same workload: for every announced
//! `(destination device, prefix)` pair, every other device must reach
//! the destination (no blackholes, no loops). The common verdict
//! machinery lives in [`common`].

pub mod ap;
pub mod common;
pub mod deltanet;
pub mod flash;
pub mod intervals;
pub mod veriflow;

pub use common::{BaselineReport, CentralizedDpv, Workload};

/// Instantiates every baseline (convenience for the bench harness).
pub fn all_baselines() -> Vec<Box<dyn CentralizedDpv>> {
    vec![
        Box::new(ap::Ap::new()),
        Box::new(ap::ApKeep::new()),
        Box::new(deltanet::DeltaNet::new()),
        Box::new(veriflow::VeriFlow::new()),
        Box::new(flash::Flash::new()),
    ]
}
