//! VeriFlow-style baseline: equivalence classes computed *per query*
//! from the rules overlapping the queried prefix (trie-slice style).
//! No persistent atom table — cheap memory, but bursts recompute
//! everything and updates recompute the overlapping ECs.

use crate::common::{reach_set, BaselineReport, CentralizedDpv, Workload};
use crate::intervals::{prefix_range, AtomAction, IntervalAtoms};
use tulkun_netmodel::fib::Fib;
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::{DeviceId, IpPrefix};

/// The VeriFlow baseline.
#[derive(Default)]
pub struct VeriFlow {
    net: Option<Network>,
    workload: Workload,
}

impl VeriFlow {
    /// Fresh instance.
    pub fn new() -> Self {
        VeriFlow {
            net: None,
            workload: Workload { pairs: Vec::new() },
        }
    }

    /// Local ECs of a prefix: boundaries contributed by every rule that
    /// overlaps it, across all devices.
    fn local_atoms(net: &Network, prefix: &IpPrefix) -> IntervalAtoms {
        let overlapping: Vec<IpPrefix> = net
            .fibs
            .iter()
            .flat_map(|f| f.rules().iter().map(|r| r.matches.dst))
            .filter(|p| p.overlaps(prefix))
            .chain(std::iter::once(*prefix))
            .collect();
        IntervalAtoms::from_prefixes(overlapping.iter())
    }

    /// Resolves one device's action for an atom by longest-priority
    /// lookup on a sample address.
    fn resolve(fib: &Fib, sample: u64) -> AtomAction {
        for rule in fib.rules() {
            let (lo, hi) = prefix_range(&rule.matches.dst);
            if (lo..hi).contains(&sample) {
                return AtomAction::from_action(&rule.action);
            }
        }
        AtomAction::default()
    }

    /// Verifies all ECs of `prefix` toward `dst`.
    fn verify_pair(
        &self,
        dst: DeviceId,
        prefix: &IpPrefix,
        scope: Option<&IpPrefix>,
    ) -> BaselineReport {
        let net = self.net.as_ref().expect("verify_burst first");
        let n = net.topology.num_devices();
        let atoms = Self::local_atoms(net, prefix);
        let mut report = BaselineReport::default();
        for atom in atoms.atoms_of(prefix) {
            let sample = atoms.sample(atom);
            if let Some(scope) = scope {
                let (lo, hi) = prefix_range(scope);
                if !(lo..hi).contains(&sample) {
                    continue;
                }
            }
            report.classes += 1;
            let actions: Vec<AtomAction> =
                net.fibs.iter().map(|f| Self::resolve(f, sample)).collect();
            let edges: Vec<Vec<DeviceId>> = actions.iter().map(|a| a.next_hops.clone()).collect();
            let delivered = actions[dst.idx()].delivers;
            let reached = reach_set(n, &edges, dst);
            for d in net.topology.devices() {
                if d == dst {
                    continue;
                }
                report.checked += 1;
                if !delivered || !reached[d.idx()] {
                    report.violations += 1;
                }
            }
        }
        report
    }
}

impl CentralizedDpv for VeriFlow {
    fn name(&self) -> &'static str {
        "VeriFlow"
    }

    fn verify_burst(&mut self, net: &Network, workload: &Workload) -> BaselineReport {
        self.net = Some(net.clone());
        self.workload = workload.clone();
        let pairs = self.workload.pairs.clone();
        let mut report = BaselineReport::default();
        for (dst, prefix) in &pairs {
            report.absorb(self.verify_pair(*dst, prefix, None));
        }
        report
    }

    fn apply_update(&mut self, update: &RuleUpdate) -> BaselineReport {
        let net = self.net.as_mut().expect("verify_burst first");
        net.apply(update);
        let prefix = match update {
            RuleUpdate::Insert { rule, .. } => rule.matches.dst,
            RuleUpdate::Remove { matches, .. } => matches.dst,
        };
        // Re-verify only the workload pairs whose prefix overlaps the
        // update, restricted to the update's range.
        let pairs = self.workload.pairs.clone();
        let mut report = BaselineReport::default();
        for (dst, p) in &pairs {
            if p.overlaps(&prefix) {
                report.absorb(self.verify_pair(*dst, p, Some(&prefix)));
            }
        }
        report
    }

    fn reverify(&mut self) -> BaselineReport {
        // VeriFlow keeps no persistent EC structures: a re-verification
        // recomputes everything.
        let pairs = self.workload.pairs.clone();
        let mut report = BaselineReport::default();
        for (dst, prefix) in &pairs {
            report.absorb(self.verify_pair(*dst, prefix, None));
        }
        report
    }

    fn memory_bytes(&self) -> usize {
        // Only the retained snapshot.
        self.net
            .as_ref()
            .map(|n| n.total_rules() * std::mem::size_of::<tulkun_netmodel::fib::Rule>())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_datasets::{by_name, Scale};
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};

    #[test]
    fn clean_network_verifies_and_detects_injected_error() {
        let d = by_name("B4-13", Scale::Tiny).unwrap();
        let wl = Workload::all_pairs(&d.network);
        let mut tool = VeriFlow::new();
        assert_eq!(tool.verify_burst(&d.network, &wl).violations, 0);

        let (dst, prefix) = d.network.topology.external_map().next().unwrap();
        let victim = d.network.topology.devices().find(|v| *v != dst).unwrap();
        let update = RuleUpdate::Insert {
            device: victim,
            rule: Rule {
                priority: 99,
                matches: MatchSpec::dst(prefix),
                action: Action::Drop,
            },
        };
        let r = tool.apply_update(&update);
        assert!(r.violations > 0);
    }

    #[test]
    fn update_scope_is_narrow() {
        let d = by_name("INet2", Scale::Tiny).unwrap();
        let wl = Workload::all_pairs(&d.network);
        let mut tool = VeriFlow::new();
        let burst = tool.verify_burst(&d.network, &wl);
        // A /26 sub-prefix drop only re-verifies classes inside the /26.
        let (_, prefix) = d.network.topology.external_map().next().unwrap();
        let (sub, _) = prefix.split();
        let (sub, _) = sub.split();
        let dev = d.network.topology.devices().next().unwrap();
        let update = RuleUpdate::Insert {
            device: dev,
            rule: Rule {
                priority: 99,
                matches: MatchSpec::dst(sub),
                action: Action::Drop,
            },
        };
        let incr = tool.apply_update(&update);
        assert!(incr.classes < burst.classes);
    }
}
