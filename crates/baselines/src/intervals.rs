//! IP-interval atoms over the destination address space — the shared
//! machinery behind Delta-net, VeriFlow and Flash (all of which reason
//! about destination-IP ranges rather than full header spaces).

use tulkun_netmodel::fib::{Action, Fib};
use tulkun_netmodel::IpPrefix;

/// Half-open range `[lo, hi)` of a prefix in the 2³²-address space.
pub fn prefix_range(p: &IpPrefix) -> (u64, u64) {
    let lo = p.addr as u64;
    let size = 1u64 << (32 - p.len as u32);
    (lo, lo + size)
}

/// A partition of `[0, 2³²)` into elementary intervals (*atoms*, in
/// Delta-net's terminology) induced by a set of boundaries.
#[derive(Debug, Clone, Default)]
pub struct IntervalAtoms {
    /// Sorted, deduplicated boundaries; always starts with 0 and ends
    /// with 2³². Atom `i` is `[bounds[i], bounds[i+1])`.
    bounds: Vec<u64>,
}

impl IntervalAtoms {
    /// The trivial partition (one atom covering everything).
    pub fn new() -> Self {
        IntervalAtoms {
            bounds: vec![0, 1 << 32],
        }
    }

    /// Builds the partition induced by a set of prefixes.
    pub fn from_prefixes<'a>(prefixes: impl Iterator<Item = &'a IpPrefix>) -> Self {
        let mut bounds = vec![0u64, 1 << 32];
        for p in prefixes {
            let (lo, hi) = prefix_range(p);
            bounds.push(lo);
            bounds.push(hi);
        }
        bounds.sort_unstable();
        bounds.dedup();
        IntervalAtoms { bounds }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    /// True if only the trivial atom exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// The atom index range covering a prefix (assumes the prefix's
    /// boundaries are present — they are whenever the prefix came from a
    /// rule used to build the partition).
    pub fn atoms_of(&self, p: &IpPrefix) -> std::ops::Range<usize> {
        let (lo, hi) = prefix_range(p);
        let a = self.bounds.partition_point(|&b| b < lo);
        let b = self.bounds.partition_point(|&b| b < hi);
        a..b
    }

    /// Inserts the boundaries of a prefix. Returns *duplication events*:
    /// for each event `e`, applied in order, a side table `t` aligned
    /// with the atoms must execute `t.insert(e, t[e].clone())` — the atom
    /// at `e` was split in two.
    pub fn insert(&mut self, p: &IpPrefix) -> Vec<usize> {
        let (lo, hi) = prefix_range(p);
        let mut events = Vec::new();
        for v in [lo, hi] {
            let i = self.bounds.partition_point(|&b| b < v);
            if self.bounds.get(i) != Some(&v) {
                // v falls strictly inside atom i-1.
                self.bounds.insert(i, v);
                events.push(i - 1);
            }
        }
        events
    }

    /// A representative address inside atom `i`.
    pub fn sample(&self, i: usize) -> u64 {
        self.bounds[i]
    }
}

/// Resolves a device's next hops per atom by painting rules from lowest
/// to highest priority (higher priority wins). Returns, per atom, the
/// device next hops (empty = drop) and whether it delivers externally.
pub fn paint_device(atoms: &IntervalAtoms, fib: &Fib) -> Vec<AtomAction> {
    let mut out = vec![AtomAction::default(); atoms.len()];
    // `Fib::rules()` is descending priority; paint in reverse.
    for rule in fib.rules().iter().rev() {
        // Interval machinery models destination-IP forwarding only (the
        // same restriction the paper notes for Delta-net's atoms); port
        // or proto constraints are ignored here.
        let range = atoms.atoms_of(&rule.matches.dst);
        let act = AtomAction::from_action(&rule.action);
        for slot in &mut out[range] {
            *slot = act.clone();
        }
    }
    out
}

/// A resolved per-atom action.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AtomAction {
    /// Device next hops for the atom.
    pub next_hops: Vec<tulkun_netmodel::DeviceId>,
    /// Does the device deliver the atom externally?
    pub delivers: bool,
}

impl AtomAction {
    /// Projects a FIB action.
    pub fn from_action(a: &Action) -> AtomAction {
        AtomAction {
            next_hops: a.device_next_hops(),
            delivers: a.delivers_external(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_netmodel::fib::{MatchSpec, Rule};
    use tulkun_netmodel::DeviceId;

    fn pfx(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    #[test]
    fn partition_from_prefixes() {
        let ps = [pfx("10.0.0.0/24"), pfx("10.0.0.0/23"), pfx("10.0.1.0/24")];
        let atoms = IntervalAtoms::from_prefixes(ps.iter());
        // Boundaries: 0, 10.0.0.0, 10.0.1.0, 10.0.2.0, 2^32 → 4 atoms.
        assert_eq!(atoms.len(), 4);
        assert_eq!(atoms.atoms_of(&pfx("10.0.0.0/23")), 1..3);
        assert_eq!(atoms.atoms_of(&pfx("10.0.0.0/24")), 1..2);
        assert_eq!(atoms.atoms_of(&pfx("10.0.1.0/24")), 2..3);
    }

    #[test]
    fn insert_splits_atoms() {
        let mut atoms = IntervalAtoms::from_prefixes([pfx("10.0.0.0/23")].iter());
        assert_eq!(atoms.len(), 3);
        let split = atoms.insert(&pfx("10.0.0.0/24"));
        // 10.0.0.0 existed; 10.0.1.0 splits the middle atom (index 1).
        assert_eq!(split, vec![1]);
        assert_eq!(atoms.len(), 4);
        // Re-inserting changes nothing.
        assert!(atoms.insert(&pfx("10.0.0.0/24")).is_empty());
    }

    #[test]
    fn insert_can_split_twice() {
        let mut atoms = IntervalAtoms::new();
        let events = atoms.insert(&pfx("10.0.0.0/24"));
        assert_eq!(events, vec![0, 1]);
        assert_eq!(atoms.len(), 3);
        // Applying the events to an aligned side table keeps it aligned.
        let mut table = vec!["x"];
        for e in events {
            table.insert(e, table[e]);
        }
        assert_eq!(table.len(), atoms.len());
    }

    #[test]
    fn paint_respects_priority() {
        let atoms = IntervalAtoms::from_prefixes([pfx("10.0.0.0/23"), pfx("10.0.0.0/24")].iter());
        let mut fib = Fib::new();
        fib.insert(Rule {
            priority: 23,
            matches: MatchSpec::dst(pfx("10.0.0.0/23")),
            action: Action::fwd(DeviceId(1)),
        });
        fib.insert(Rule {
            priority: 24,
            matches: MatchSpec::dst(pfx("10.0.0.0/24")),
            action: Action::Drop,
        });
        let painted = paint_device(&atoms, &fib);
        let r24 = atoms.atoms_of(&pfx("10.0.0.0/24"));
        assert!(
            painted[r24.start].next_hops.is_empty(),
            "/24 must be dropped"
        );
        let r23 = atoms.atoms_of(&pfx("10.0.0.0/23"));
        assert_eq!(painted[r23.end - 1].next_hops, vec![DeviceId(1)]);
        // Outside both prefixes: default drop.
        assert!(painted[0].next_hops.is_empty());
    }
}
