//! Flash-style baseline: batch equivalence-class computation (fast
//! bursts over massive rule sets), slower per-update incremental
//! processing, and the *early detection* mode that verifies with
//! incomplete information (§1's missing-devices experiment).

use crate::common::{reach_set, BaselineReport, CentralizedDpv, Workload};
use crate::intervals::{paint_device, AtomAction, IntervalAtoms};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::DeviceId;

/// The Flash baseline.
#[derive(Default)]
pub struct Flash {
    atoms: IntervalAtoms,
    /// `table[device][atom]` (device-major: Flash's per-device batch
    /// painting).
    table: Vec<Vec<AtomAction>>,
    net: Option<Network>,
    workload: Workload,
}

impl Flash {
    /// Fresh instance.
    pub fn new() -> Self {
        Flash {
            atoms: IntervalAtoms::new(),
            table: Vec::new(),
            net: None,
            workload: Workload { pairs: Vec::new() },
        }
    }

    fn rebuild(&mut self) {
        let net = self.net.as_ref().expect("snapshot");
        let rule_prefixes = net
            .fibs
            .iter()
            .flat_map(|f| f.rules().iter().map(|r| &r.matches.dst));
        let wl_prefixes = self.workload.pairs.iter().map(|(_, p)| p);
        let all: Vec<_> = rule_prefixes.chain(wl_prefixes).cloned().collect();
        self.atoms = IntervalAtoms::from_prefixes(all.iter());
        self.table = net
            .fibs
            .iter()
            .map(|f| paint_device(&self.atoms, f))
            .collect();
    }

    fn verify_atoms(&self, filter: Option<std::ops::Range<usize>>) -> BaselineReport {
        self.verify_atoms_missing(filter, &[])
    }

    fn verify_atoms_missing(
        &self,
        filter: Option<std::ops::Range<usize>>,
        missing: &[DeviceId],
    ) -> BaselineReport {
        let net = self.net.as_ref().expect("verify_burst first");
        let n = net.topology.num_devices();
        let mut report = BaselineReport::default();
        for (dst, prefix) in &self.workload.pairs {
            for atom in self.atoms.atoms_of(prefix) {
                if let Some(f) = &filter {
                    if !f.contains(&atom) {
                        continue;
                    }
                }
                report.classes += 1;
                let mut edges: Vec<Vec<DeviceId>> = self
                    .table
                    .iter()
                    .map(|col| col[atom].next_hops.clone())
                    .collect();
                let mut delivered = self.table[dst.idx()][atom].delivers;
                // Early detection with incomplete information: a missing
                // device's behaviour is unknown; Flash optimistically
                // assumes it is correct (it cannot prove an error through
                // it), so errors at or behind missing devices go
                // undetected.
                for &m in missing {
                    edges[m.idx()] = vec![*dst];
                    if m == *dst {
                        delivered = true;
                    }
                }
                let reached = reach_set(n, &edges, *dst);
                for d in net.topology.devices() {
                    if d == *dst {
                        continue;
                    }
                    report.checked += 1;
                    if missing.contains(&d) {
                        continue; // unknown source FIB: nothing to claim
                    }
                    if !delivered || !reached[d.idx()] {
                        report.violations += 1;
                    }
                }
            }
        }
        report
    }

    /// The §1 experiment: verify while the rules of `missing` devices
    /// have not reached the verifier. Returns how many violations are
    /// still detectable.
    pub fn verify_with_missing(
        &mut self,
        net: &Network,
        workload: &Workload,
        missing: &[DeviceId],
    ) -> BaselineReport {
        self.net = Some(net.clone());
        self.workload = workload.clone();
        self.rebuild();
        self.verify_atoms_missing(None, missing)
    }
}

impl CentralizedDpv for Flash {
    fn name(&self) -> &'static str {
        "Flash"
    }

    fn verify_burst(&mut self, net: &Network, workload: &Workload) -> BaselineReport {
        self.net = Some(net.clone());
        self.workload = workload.clone();
        self.rebuild();
        self.verify_atoms(None)
    }

    fn apply_update(&mut self, update: &RuleUpdate) -> BaselineReport {
        // Flash processes updates as (mini-)batches: apply, then rebuild
        // the partition and repaint every device before re-verifying the
        // touched range — correct but heavyweight per single update,
        // which is exactly the paper's observation.
        let net = self.net.as_mut().expect("verify_burst first");
        net.apply(update);
        let prefix = match update {
            RuleUpdate::Insert { rule, .. } => rule.matches.dst,
            RuleUpdate::Remove { matches, .. } => matches.dst,
        };
        self.rebuild();
        let range = self.atoms.atoms_of(&prefix);
        self.verify_atoms(Some(range))
    }

    fn reverify(&mut self) -> BaselineReport {
        self.verify_atoms(None)
    }

    fn memory_bytes(&self) -> usize {
        self.table
            .iter()
            .map(|col| {
                col.iter()
                    .map(|a| 32 + 4 * a.next_hops.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_datasets::{by_name, Scale};
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};

    #[test]
    fn burst_and_incremental() {
        let d = by_name("STFD", Scale::Tiny).unwrap();
        let wl = Workload::all_pairs(&d.network);
        let mut tool = Flash::new();
        assert_eq!(tool.verify_burst(&d.network, &wl).violations, 0);
        let (dst, prefix) = d.network.topology.external_map().next().unwrap();
        let victim = d.network.topology.devices().find(|v| *v != dst).unwrap();
        let r = tool.apply_update(&RuleUpdate::Insert {
            device: victim,
            rule: Rule {
                priority: 99,
                matches: MatchSpec::dst(prefix),
                action: Action::Drop,
            },
        });
        assert!(r.violations > 0);
    }

    #[test]
    fn missing_devices_hide_errors() {
        // Reproduce the §1 observation: a blackhole at a device whose
        // rules the verifier never received is undetectable.
        let d = by_name("INet2", Scale::Tiny).unwrap();
        let mut net = d.network.clone();
        let (dst, prefix) = net.topology.external_map().next().unwrap();
        let victim = net.topology.devices().find(|v| *v != dst).unwrap();
        net.apply(&RuleUpdate::Insert {
            device: victim,
            rule: Rule {
                priority: 99,
                matches: MatchSpec::dst(prefix),
                action: Action::Drop,
            },
        });
        let wl = Workload::all_pairs(&net);

        let mut tool = Flash::new();
        let full = tool.verify_burst(&net, &wl);
        assert!(full.violations > 0, "with full info the error is visible");

        let mut tool = Flash::new();
        let partial = tool.verify_with_missing(&net, &wl, &[victim]);
        assert!(
            partial.violations < full.violations,
            "missing the victim's rules must hide (some of) the error"
        );
    }
}
