#![warn(missing_docs)]
//! Binary decision diagrams (BDDs) for packet-set predicates.
//!
//! Tulkun's DVM protocol represents sets of packets as *predicates* and
//! performs frequent set operations on them (union, intersection,
//! difference, emptiness tests). Following the paper (§5.1), predicates are
//! encoded as reduced ordered BDDs so every set operation is a logical
//! operation on BDDs and equal sets share one canonical representation.
//!
//! This crate is a from-scratch substrate playing the role of the JDD
//! library used by the paper's prototype:
//!
//! * [`BddManager`] — an arena of hash-consed nodes with operation caches.
//! * [`Pred`] — a handle to a predicate (a root node in one manager).
//! * [`builder`] — helpers that build predicates for IP prefixes, exact
//!   values and integer ranges over a configurable header layout.
//! * [`serial`] — a compact portable encoding so predicates can travel
//!   inside DVM `UPDATE` messages between devices that each own a private
//!   manager (as separate switches do).
//!
//! # Example
//!
//! ```
//! use tulkun_bdd::{BddManager, builder::HeaderLayout};
//!
//! let layout = HeaderLayout::ipv4_tcp();
//! let mut m = BddManager::new(layout.num_vars());
//! let p1 = layout.dst_prefix(&mut m, [10, 0, 0, 0], 23);
//! let p2 = layout.dst_prefix(&mut m, [10, 0, 1, 0], 24);
//! // 10.0.1.0/24 ⊂ 10.0.0.0/23
//! assert!(m.implies(p2, p1));
//! assert!(!m.implies(p1, p2));
//! ```

pub mod builder;
pub mod manager;
pub mod serial;

pub use builder::HeaderLayout;
pub use manager::{BddManager, Pred};
