//! Predicate builders over a packet-header variable layout.
//!
//! Tulkun models packets by the header fields its invariants and FIBs match
//! on: destination IPv4 address, destination transport port, and protocol.
//! Each field occupies a contiguous run of BDD variables, most significant
//! bit first, so longest-prefix matches become short conjunctions near the
//! root of the variable order.

use crate::manager::{BddManager, Pred};

/// A contiguous field of bits inside the header variable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Field {
    /// First BDD variable of the field (the field's MSB).
    pub offset: u32,
    /// Field width in bits.
    pub width: u32,
}

impl Field {
    /// Predicate: the field equals `value` exactly.
    pub fn eq(&self, m: &mut BddManager, value: u64) -> Pred {
        self.prefix(m, value, self.width)
    }

    /// Predicate: the top `plen` bits of the field equal the top `plen`
    /// bits of `value` (a longest-prefix match). `plen == 0` matches all.
    pub fn prefix(&self, m: &mut BddManager, value: u64, plen: u32) -> Pred {
        assert!(plen <= self.width, "prefix length exceeds field width");
        let mut acc = m.verum();
        for i in 0..plen {
            // Bit i of the prefix is bit (width-1-i) of the value.
            let bit = (value >> (self.width - 1 - i)) & 1;
            let var = self.offset + i;
            let lit = if bit == 1 { m.var(var) } else { m.nvar(var) };
            acc = m.and(acc, lit);
        }
        acc
    }

    /// Predicate: `lo <= field <= hi` (inclusive integer range).
    pub fn range(&self, m: &mut BddManager, lo: u64, hi: u64) -> Pred {
        assert!(lo <= hi, "empty range");
        let max = if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        assert!(hi <= max, "range exceeds field width");
        let ge = self.cmp(m, lo, true);
        let le = self.cmp(m, hi, false);
        m.and(ge, le)
    }

    /// Predicate `field >= bound` (when `ge`) or `field <= bound`.
    fn cmp(&self, m: &mut BddManager, bound: u64, ge: bool) -> Pred {
        // Build bottom-up from the LSB: at each level the predicate is
        // "remaining suffix of the field compares correctly with the
        // corresponding suffix of the bound".
        let mut acc = m.verum();
        for i in (0..self.width).rev() {
            let bit = (bound >> (self.width - 1 - i)) & 1;
            let var = self.offset + i;
            let v1 = m.var(var);
            let v0 = m.nvar(var);
            acc = if ge {
                if bit == 1 {
                    // Need this bit 1 and suffix >= rest.
                    m.and(v1, acc)
                } else {
                    // Bit 1 → anything below wins; bit 0 → recurse.
                    let rec = m.and(v0, acc);
                    m.or(v1, rec)
                }
            } else if bit == 0 {
                m.and(v0, acc)
            } else {
                let rec = m.and(v1, acc);
                m.or(v0, rec)
            };
        }
        acc
    }
}

tulkun_json::impl_json_object!(Field { offset, width });

/// The variable layout of the packet headers Tulkun reasons about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderLayout {
    /// Destination IPv4 address (32 bits).
    pub dst_ip: Field,
    /// Destination transport port (16 bits).
    pub dst_port: Field,
    /// IP protocol number (8 bits).
    pub proto: Field,
}

impl HeaderLayout {
    /// The standard layout: dstIP (32) ∥ dstPort (16) ∥ proto (8).
    pub fn ipv4_tcp() -> Self {
        HeaderLayout {
            dst_ip: Field {
                offset: 0,
                width: 32,
            },
            dst_port: Field {
                offset: 32,
                width: 16,
            },
            proto: Field {
                offset: 48,
                width: 8,
            },
        }
    }

    /// Total number of BDD variables the layout requires.
    pub fn num_vars(&self) -> u32 {
        (self.dst_ip.width + self.dst_port.width + self.proto.width).max(
            [self.dst_ip, self.dst_port, self.proto]
                .iter()
                .map(|f| f.offset + f.width)
                .max()
                .unwrap_or(0),
        )
    }

    /// Predicate for a destination prefix `a.b.c.d/plen`.
    pub fn dst_prefix(&self, m: &mut BddManager, octets: [u8; 4], plen: u32) -> Pred {
        let value = u32::from_be_bytes(octets) as u64;
        self.dst_ip.prefix(m, value, plen)
    }

    /// Predicate for an exact destination port.
    pub fn dst_port_eq(&self, m: &mut BddManager, port: u16) -> Pred {
        self.dst_port.eq(m, port as u64)
    }

    /// Predicate for an inclusive destination port range.
    pub fn dst_port_range(&self, m: &mut BddManager, lo: u16, hi: u16) -> Pred {
        self.dst_port.range(m, lo as u64, hi as u64)
    }
}

tulkun_json::impl_json_object!(HeaderLayout {
    dst_ip,
    dst_port,
    proto
});

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_ip(m: &BddManager, layout: &HeaderLayout, p: Pred, ip: u32, port: u16) -> bool {
        let mut bits = vec![false; layout.num_vars() as usize];
        for i in 0..32 {
            bits[(layout.dst_ip.offset + i) as usize] = (ip >> (31 - i)) & 1 == 1;
        }
        for i in 0..16 {
            bits[(layout.dst_port.offset + i) as usize] = (port >> (15 - i)) & 1 == 1;
        }
        m.eval(p, &bits)
    }

    #[test]
    fn prefix_semantics() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut m = BddManager::new(layout.num_vars());
        let p = layout.dst_prefix(&mut m, [10, 0, 0, 0], 23);
        assert!(eval_ip(
            &m,
            &layout,
            p,
            u32::from_be_bytes([10, 0, 0, 5]),
            0
        ));
        assert!(eval_ip(
            &m,
            &layout,
            p,
            u32::from_be_bytes([10, 0, 1, 200]),
            0
        ));
        assert!(!eval_ip(
            &m,
            &layout,
            p,
            u32::from_be_bytes([10, 0, 2, 0]),
            0
        ));
        assert!(!eval_ip(
            &m,
            &layout,
            p,
            u32::from_be_bytes([11, 0, 0, 0]),
            0
        ));
    }

    #[test]
    fn prefix_nesting() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut m = BddManager::new(layout.num_vars());
        let p23 = layout.dst_prefix(&mut m, [10, 0, 0, 0], 23);
        let p24a = layout.dst_prefix(&mut m, [10, 0, 0, 0], 24);
        let p24b = layout.dst_prefix(&mut m, [10, 0, 1, 0], 24);
        assert!(m.implies(p24a, p23));
        assert!(m.implies(p24b, p23));
        assert!(!m.intersects(p24a, p24b));
        let u = m.or(p24a, p24b);
        assert_eq!(u, p23);
    }

    #[test]
    fn zero_length_prefix_matches_everything() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut m = BddManager::new(layout.num_vars());
        let p = layout.dst_prefix(&mut m, [1, 2, 3, 4], 0);
        assert!(m.is_true(p));
    }

    #[test]
    fn port_eq_and_range() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut m = BddManager::new(layout.num_vars());
        let p80 = layout.dst_port_eq(&mut m, 80);
        assert!(eval_ip(&m, &layout, p80, 0, 80));
        assert!(!eval_ip(&m, &layout, p80, 0, 81));

        let r = layout.dst_port_range(&mut m, 1000, 2000);
        assert!(!eval_ip(&m, &layout, r, 0, 999));
        assert!(eval_ip(&m, &layout, r, 0, 1000));
        assert!(eval_ip(&m, &layout, r, 0, 1500));
        assert!(eval_ip(&m, &layout, r, 0, 2000));
        assert!(!eval_ip(&m, &layout, r, 0, 2001));
        // Count must match exactly: sat_count over non-port vars scales by 2^(32+8).
        let total = m.sat_count(r);
        let expected = 1001.0 * 2f64.powi(40);
        assert_eq!(total, expected);
    }

    #[test]
    fn range_degenerate_single_value_equals_eq() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut m = BddManager::new(layout.num_vars());
        let a = layout.dst_port_range(&mut m, 443, 443);
        let b = layout.dst_port_eq(&mut m, 443);
        assert_eq!(a, b);
    }

    #[test]
    fn full_range_is_true() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut m = BddManager::new(layout.num_vars());
        let r = layout.dst_port_range(&mut m, 0, u16::MAX);
        assert!(m.is_true(r));
    }
}
