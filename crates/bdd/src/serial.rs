//! Portable predicate encoding for DVM messages.
//!
//! Each on-device verifier owns a private [`BddManager`] (as separate
//! switches do in the paper's deployment). Predicates inside `UPDATE`
//! messages therefore travel as a self-contained node list and are
//! re-interned into the receiving manager, where hash-consing
//! deduplicates them against existing nodes. This plays the role of the
//! paper's JDD + Protobuf (de)serialization (§8).

use crate::manager::{BddManager, Pred};

/// A self-contained, manager-independent encoding of one predicate.
///
/// Nodes are listed children-first, with local indices: 0 = FALSE,
/// 1 = TRUE, and node `i >= 2` is `nodes[i - 2]`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortablePred {
    /// `(var, lo, hi)` triples in children-first order.
    nodes: Vec<(u32, u32, u32)>,
    /// Local index of the root.
    root: u32,
}

tulkun_json::impl_json_object!(PortablePred { nodes, root });

impl PortablePred {
    /// Number of decision nodes in the encoding.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the encoding has no decision nodes (constant predicate).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Approximate wire size in bytes (3 × u32 per node plus the root).
    pub fn wire_bytes(&self) -> usize {
        self.nodes.len() * 12 + 4
    }

    /// The `(var, lo, hi)` node triples in children-first order, local
    /// indices as documented on the type. Exposed so non-BDD predicate
    /// backends can decode the wire encoding into their own
    /// representation without round-tripping through a manager.
    pub fn nodes(&self) -> &[(u32, u32, u32)] {
        &self.nodes
    }

    /// Local index of the root node (0 = FALSE, 1 = TRUE, `i >= 2` is
    /// `nodes()[i - 2]`).
    pub fn root(&self) -> u32 {
        self.root
    }
}

/// Exports a predicate from `m` into a portable encoding.
pub fn export(m: &BddManager, pred: Pred) -> PortablePred {
    let reach = m.reachable(pred.index());
    // `reachable` is post-order (children first), so child indices are
    // always resolvable in one pass.
    let mut nodes = Vec::with_capacity(reach.len());
    let mut local: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    local.insert(0, 0);
    local.insert(1, 1);
    for &(idx, var, lo, hi) in reach.iter() {
        let lo = local[&lo];
        let hi = local[&hi];
        let li = nodes.len() as u32 + 2;
        nodes.push((var, lo, hi));
        local.insert(idx, li);
    }
    PortablePred {
        nodes,
        root: local[&pred.index()],
    }
}

/// Errors raised while importing a portable predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// A node referenced a child that does not precede it.
    ForwardReference {
        /// Index of the offending node in the encoding.
        node: usize,
    },
    /// A variable index was out of range for the receiving manager.
    VarOutOfRange {
        /// The out-of-range variable index.
        var: u32,
    },
    /// The root index was invalid.
    BadRoot,
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::ForwardReference { node } => {
                write!(f, "node {node} references a later node")
            }
            ImportError::VarOutOfRange { var } => write!(f, "variable {var} out of range"),
            ImportError::BadRoot => write!(f, "root index out of range"),
        }
    }
}

impl std::error::Error for ImportError {}

/// Imports a portable predicate into `m`, re-interning every node.
pub fn import(m: &mut BddManager, p: &PortablePred) -> Result<Pred, ImportError> {
    let mut map: Vec<u32> = Vec::with_capacity(p.nodes.len() + 2);
    map.push(0);
    map.push(1);
    for (i, &(var, lo, hi)) in p.nodes.iter().enumerate() {
        if var >= m.num_vars() {
            return Err(ImportError::VarOutOfRange { var });
        }
        let lo = *map
            .get(lo as usize)
            .ok_or(ImportError::ForwardReference { node: i })?;
        let hi = *map
            .get(hi as usize)
            .ok_or(ImportError::ForwardReference { node: i })?;
        map.push(m.mk_raw(var, lo, hi));
    }
    map.get(p.root as usize)
        .copied()
        .map(Pred)
        .ok_or(ImportError::BadRoot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HeaderLayout;

    #[test]
    fn round_trip_same_manager() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut m = BddManager::new(layout.num_vars());
        let p = layout.dst_prefix(&mut m, [192, 168, 0, 0], 16);
        let port = layout.dst_port_range(&mut m, 53, 100);
        let p = m.and(p, port);
        let enc = export(&m, p);
        let back = import(&mut m, &enc).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn round_trip_across_managers() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut a = BddManager::new(layout.num_vars());
        let mut b = BddManager::new(layout.num_vars());
        // Populate b differently first so node indices diverge.
        let _noise = layout.dst_prefix(&mut b, [7, 7, 7, 0], 24);

        let p1 = layout.dst_prefix(&mut a, [10, 0, 0, 0], 23);
        let p2 = layout.dst_port_eq(&mut a, 80);
        let p = a.and(p1, p2);
        let enc = export(&a, p);
        let q = import(&mut b, &enc).unwrap();

        // Semantically identical: same sat count and same canonical form
        // when rebuilt natively in b.
        let q1 = layout.dst_prefix(&mut b, [10, 0, 0, 0], 23);
        let q2 = layout.dst_port_eq(&mut b, 80);
        let q_native = b.and(q1, q2);
        assert_eq!(q, q_native);
        assert_eq!(a.sat_count(p), b.sat_count(q));
    }

    #[test]
    fn constants_round_trip() {
        let mut m = BddManager::new(8);
        for c in [Pred::TRUE, Pred::FALSE] {
            let enc = export(&m, c);
            assert!(enc.is_empty());
            assert_eq!(import(&mut m, &enc).unwrap(), c);
        }
    }

    #[test]
    fn rejects_out_of_range_vars() {
        let mut big = BddManager::new(64);
        let mut small = BddManager::new(4);
        let v = big.var(60);
        let enc = export(&big, v);
        assert!(matches!(
            import(&mut small, &enc),
            Err(ImportError::VarOutOfRange { var: 60 })
        ));
    }

    #[test]
    fn json_round_trip() {
        let mut m = BddManager::new(16);
        let x = m.var(3);
        let y = m.nvar(9);
        let p = m.or(x, y);
        let enc = export(&m, p);
        let json = tulkun_json::to_string(&enc);
        let dec: PortablePred = tulkun_json::from_str(&json).unwrap();
        assert_eq!(import(&mut m, &dec).unwrap(), p);
    }
}
