//! The BDD node arena and core logical operations.

use std::collections::HashMap;

/// A handle to a predicate: the index of a BDD root node inside one
/// [`BddManager`].
///
/// Handles are only meaningful together with the manager that produced
/// them; moving predicates between managers goes through
/// [`crate::serial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(pub(crate) u32);

impl Pred {
    /// The canonical false (empty set) predicate in every manager.
    pub const FALSE: Pred = Pred(0);
    /// The canonical true (full set) predicate in every manager.
    pub const TRUE: Pred = Pred(1);

    /// Raw node index (stable within one manager for the manager's
    /// lifetime; exposed for hashing and diagnostics).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a raw index previously obtained with
    /// [`Pred::index`]. The index must come from the *same* manager the
    /// handle will be used with; passing anything else yields a handle
    /// whose operations are meaningless (or panic on out-of-range
    /// accesses). Exists so backend facades can wrap predicate handles
    /// of several representations behind one uniform handle type.
    pub fn from_index(index: u32) -> Pred {
        Pred(index)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    /// Decision variable. Terminals use `u32::MAX`.
    var: u32,
    /// Child when the variable is 0.
    lo: u32,
    /// Child when the variable is 1.
    hi: u32,
}

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// An arena of reduced, ordered, hash-consed BDD nodes.
///
/// Variables are `0..num_vars`, ordered by index (variable 0 is the root
/// level). The manager grows monotonically; Tulkun's per-device predicate
/// working sets are small enough (the paper reports ≤ tens of MB per
/// device) that garbage collection is unnecessary here.
#[derive(Debug, Clone)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, u32>,
    cache: HashMap<(Op, u32, u32), u32>,
    not_cache: HashMap<u32, u32>,
    num_vars: u32,
}

impl BddManager {
    /// Creates a manager for predicates over `num_vars` boolean variables.
    pub fn new(num_vars: u32) -> Self {
        let nodes = vec![
            // 0 = FALSE terminal, 1 = TRUE terminal.
            Node {
                var: TERMINAL_VAR,
                lo: 0,
                hi: 0,
            },
            Node {
                var: TERMINAL_VAR,
                lo: 1,
                hi: 1,
            },
        ];
        BddManager {
            nodes,
            unique: HashMap::new(),
            cache: HashMap::new(),
            not_cache: HashMap::new(),
            num_vars,
        }
    }

    /// Number of boolean variables in this manager's order.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Total nodes allocated (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The empty predicate (no packets).
    pub fn falsum(&self) -> Pred {
        Pred::FALSE
    }

    /// The full predicate (all packets).
    pub fn verum(&self) -> Pred {
        Pred::TRUE
    }

    /// The predicate "variable `var` is 1".
    pub fn var(&mut self, var: u32) -> Pred {
        assert!(var < self.num_vars, "variable {var} out of range");
        Pred(self.mk(var, 0, 1))
    }

    /// The predicate "variable `var` is 0".
    pub fn nvar(&mut self, var: u32) -> Pred {
        assert!(var < self.num_vars, "variable {var} out of range");
        Pred(self.mk(var, 1, 0))
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&idx) = self.unique.get(&node) {
            return idx;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        self.unique.insert(node, idx);
        idx
    }

    fn node(&self, idx: u32) -> Node {
        self.nodes[idx as usize]
    }

    fn level(&self, idx: u32) -> u32 {
        // Terminals sort below all decision variables.
        self.nodes[idx as usize].var
    }

    fn apply(&mut self, op: Op, a: u32, b: u32) -> u32 {
        // Terminal cases.
        match op {
            Op::And => {
                if a == 0 || b == 0 {
                    return 0;
                }
                if a == 1 {
                    return b;
                }
                if b == 1 || a == b {
                    return a;
                }
            }
            Op::Or => {
                if a == 1 || b == 1 {
                    return 1;
                }
                if a == 0 {
                    return b;
                }
                if b == 0 || a == b {
                    return a;
                }
            }
            Op::Xor => {
                if a == b {
                    return 0;
                }
                if a == 0 {
                    return b;
                }
                if b == 0 {
                    return a;
                }
            }
        }
        // Commutative ops: normalize the cache key.
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let na = self.node(a);
        let nb = self.node(b);
        let (var, alo, ahi, blo, bhi) = if self.level(a) < self.level(b) {
            (na.var, na.lo, na.hi, b, b)
        } else if self.level(b) < self.level(a) {
            (nb.var, a, a, nb.lo, nb.hi)
        } else {
            (na.var, na.lo, na.hi, nb.lo, nb.hi)
        };
        let lo = self.apply(op, alo, blo);
        let hi = self.apply(op, ahi, bhi);
        let r = self.mk(var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Set intersection.
    pub fn and(&mut self, a: Pred, b: Pred) -> Pred {
        Pred(self.apply(Op::And, a.0, b.0))
    }

    /// Set union.
    pub fn or(&mut self, a: Pred, b: Pred) -> Pred {
        Pred(self.apply(Op::Or, a.0, b.0))
    }

    /// Symmetric difference.
    pub fn xor(&mut self, a: Pred, b: Pred) -> Pred {
        Pred(self.apply(Op::Xor, a.0, b.0))
    }

    /// Set complement.
    pub fn not(&mut self, a: Pred) -> Pred {
        Pred(self.not_rec(a.0))
    }

    fn not_rec(&mut self, a: u32) -> u32 {
        if a == 0 {
            return 1;
        }
        if a == 1 {
            return 0;
        }
        if let Some(&r) = self.not_cache.get(&a) {
            return r;
        }
        let n = self.node(a);
        let lo = self.not_rec(n.lo);
        let hi = self.not_rec(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(a, r);
        self.not_cache.insert(r, a);
        r
    }

    /// Set difference `a \ b`.
    pub fn diff(&mut self, a: Pred, b: Pred) -> Pred {
        let nb = self.not(b);
        self.and(a, nb)
    }

    /// Is the predicate the empty set?
    pub fn is_false(&self, a: Pred) -> bool {
        a.0 == 0
    }

    /// Is the predicate the full set?
    pub fn is_true(&self, a: Pred) -> bool {
        a.0 == 1
    }

    /// Does `a ⊆ b` hold (every packet in `a` also matches `b`)?
    pub fn implies(&mut self, a: Pred, b: Pred) -> bool {
        self.diff(a, b) == Pred::FALSE
    }

    /// Do `a` and `b` share at least one packet?
    pub fn intersects(&mut self, a: Pred, b: Pred) -> bool {
        self.and(a, b) != Pred::FALSE
    }

    /// Number of satisfying assignments over all `num_vars` variables,
    /// as an `f64` (exact for < 2^53).
    pub fn sat_count(&self, a: Pred) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.sat_rec(a.0, &mut memo) * 2f64.powi(self.level_gap(0, a.0) as i32)
    }

    fn level_gap(&self, upper: u32, idx: u32) -> u32 {
        let var = self.level(idx);
        let var = if var == TERMINAL_VAR {
            self.num_vars
        } else {
            var
        };
        var - upper
    }

    fn sat_rec(&self, idx: u32, memo: &mut HashMap<u32, f64>) -> f64 {
        if idx == 0 {
            return 0.0;
        }
        if idx == 1 {
            return 1.0;
        }
        if let Some(&c) = memo.get(&idx) {
            return c;
        }
        let n = self.node(idx);
        let lo = self.sat_rec(n.lo, memo) * 2f64.powi(self.level_gap(n.var + 1, n.lo) as i32);
        let hi = self.sat_rec(n.hi, memo) * 2f64.powi(self.level_gap(n.var + 1, n.hi) as i32);
        let c = lo + hi;
        memo.insert(idx, c);
        c
    }

    /// Existentially quantifies away all variables in `lo..hi`
    /// (`∃ x_lo..x_hi. a`). Used to compute the image of a packet set
    /// under a header rewrite.
    pub fn exists_range(&mut self, a: Pred, lo: u32, hi: u32) -> Pred {
        let mut memo = HashMap::new();
        Pred(self.exists_rec(a.0, lo, hi, &mut memo))
    }

    fn exists_rec(&mut self, idx: u32, lo: u32, hi: u32, memo: &mut HashMap<u32, u32>) -> u32 {
        if idx <= 1 {
            return idx;
        }
        let var = self.level(idx);
        if var >= hi {
            return idx; // below the quantified range: unchanged
        }
        if let Some(&r) = memo.get(&idx) {
            return r;
        }
        let n = self.node(idx);
        let l = self.exists_rec(n.lo, lo, hi, memo);
        let h = self.exists_rec(n.hi, lo, hi, memo);
        let r = if var >= lo {
            self.apply(Op::Or, l, h)
        } else {
            self.mk(n.var, l, h)
        };
        memo.insert(idx, r);
        r
    }

    /// One satisfying assignment (variable index → value), or `None` for
    /// the empty predicate. Unconstrained variables are omitted.
    pub fn any_model(&self, a: Pred) -> Option<Vec<(u32, bool)>> {
        if a.0 == 0 {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = a.0;
        while cur != 1 {
            let n = self.node(cur);
            if n.hi != 0 {
                out.push((n.var, true));
                cur = n.hi;
            } else {
                out.push((n.var, false));
                cur = n.lo;
            }
        }
        Some(out)
    }

    /// Evaluates the predicate on a concrete assignment (a bit per
    /// variable, indexed by variable number).
    pub fn eval(&self, a: Pred, assignment: &[bool]) -> bool {
        let mut cur = a.0;
        loop {
            if cur == 0 {
                return false;
            }
            if cur == 1 {
                return true;
            }
            let n = self.node(cur);
            cur = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
    }

    /// Iterates over the nodes reachable from `root` in post-order
    /// (children strictly before parents — required by serialization).
    /// Yields `(index, var, lo, hi)`.
    pub(crate) fn reachable(&self, root: u32) -> Vec<(u32, u32, u32, u32)> {
        let mut seen: HashMap<u32, ()> = HashMap::new();
        let mut order = Vec::new();
        let mut stack = vec![(root, false)];
        while let Some((idx, expanded)) = stack.pop() {
            if idx <= 1 {
                continue;
            }
            let n = self.node(idx);
            if expanded {
                order.push((idx, n.var, n.lo, n.hi));
                continue;
            }
            if seen.insert(idx, ()).is_some() {
                continue;
            }
            stack.push((idx, true));
            stack.push((n.lo, false));
            stack.push((n.hi, false));
        }
        order
    }

    pub(crate) fn mk_raw(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        self.mk(var, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_canonical() {
        let m = BddManager::new(4);
        assert!(m.is_false(Pred::FALSE));
        assert!(m.is_true(Pred::TRUE));
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn var_and_negation() {
        let mut m = BddManager::new(4);
        let x = m.var(0);
        let nx = m.nvar(0);
        assert_eq!(m.not(x), nx);
        assert_eq!(m.and(x, nx), Pred::FALSE);
        assert_eq!(m.or(x, nx), Pred::TRUE);
    }

    #[test]
    fn hash_consing_produces_identical_handles() {
        let mut m = BddManager::new(4);
        let a = {
            let x = m.var(0);
            let y = m.var(1);
            m.and(x, y)
        };
        let b = {
            let y = m.var(1);
            let x = m.var(0);
            m.and(y, x)
        };
        assert_eq!(a, b);
    }

    #[test]
    fn de_morgan() {
        let mut m = BddManager::new(4);
        let x = m.var(0);
        let y = m.var(1);
        let lhs = {
            let o = m.or(x, y);
            m.not(o)
        };
        let rhs = {
            let nx = m.not(x);
            let ny = m.not(y);
            m.and(nx, ny)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn sat_count_basic() {
        let mut m = BddManager::new(3);
        assert_eq!(m.sat_count(Pred::TRUE), 8.0);
        assert_eq!(m.sat_count(Pred::FALSE), 0.0);
        let x = m.var(0);
        assert_eq!(m.sat_count(x), 4.0);
        let y = m.var(2);
        let xy = m.and(x, y);
        assert_eq!(m.sat_count(xy), 2.0);
        let xoy = m.or(x, y);
        assert_eq!(m.sat_count(xoy), 6.0);
    }

    #[test]
    fn implies_and_intersects() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let xy = m.and(x, y);
        assert!(m.implies(xy, x));
        assert!(!m.implies(x, xy));
        assert!(m.intersects(x, y));
        let nx = m.not(x);
        assert!(!m.intersects(x, nx));
    }

    #[test]
    fn xor_and_diff() {
        let mut m = BddManager::new(2);
        let x = m.var(0);
        let y = m.var(1);
        let d = m.diff(x, y);
        // x \ y = x & !y: one assignment out of 4.
        assert_eq!(m.sat_count(d), 1.0);
        let xo = m.xor(x, y);
        assert_eq!(m.sat_count(xo), 2.0);
    }

    #[test]
    fn exists_range_drops_constraints() {
        let mut m = BddManager::new(4);
        let x = m.var(1);
        let y = m.var(3);
        let p = m.and(x, y);
        // Quantify away var 1: result should be just y.
        let q = m.exists_range(p, 0, 2);
        assert_eq!(q, y);
        // Quantify everything: nonempty set → TRUE.
        let all = m.exists_range(p, 0, 4);
        assert!(m.is_true(all));
        // Empty stays empty.
        let e = m.exists_range(Pred::FALSE, 0, 4);
        assert!(m.is_false(e));
    }

    #[test]
    fn exists_range_of_disjunction() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let nx = m.not(x);
        let a = m.and(x, y);
        let b = {
            let ny = m.not(y);
            m.and(nx, ny)
        };
        let p = m.or(a, b);
        // ∃x. p = y ∨ ¬y = TRUE.
        let q = m.exists_range(p, 0, 1);
        assert!(m.is_true(q));
    }

    #[test]
    fn eval_and_model_agree() {
        let mut m = BddManager::new(4);
        let x = m.var(1);
        let y = m.nvar(3);
        let p = m.and(x, y);
        let model = m.any_model(p).unwrap();
        let mut assignment = vec![false; 4];
        for (v, b) in model {
            assignment[v as usize] = b;
        }
        assert!(m.eval(p, &assignment));
        assert!(m.any_model(Pred::FALSE).is_none());
    }
}
