//! Property-based tests: BDD operations against a brute-force
//! truth-table model, and serialization round-trips.

use proptest::prelude::*;
use tulkun_bdd::{serial, BddManager, Pred};

/// A tiny boolean-expression AST we can evaluate both ways.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

const VARS: u32 = 6;

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = (0..VARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(m: &mut BddManager, e: &Expr) -> Pred {
    match e {
        Expr::Var(i) => m.var(*i),
        Expr::Not(a) => {
            let x = build(m, a);
            m.not(x)
        }
        Expr::And(a, b) => {
            let x = build(m, a);
            let y = build(m, b);
            m.and(x, y)
        }
        Expr::Or(a, b) => {
            let x = build(m, a);
            let y = build(m, b);
            m.or(x, y)
        }
        Expr::Xor(a, b) => {
            let x = build(m, a);
            let y = build(m, b);
            m.xor(x, y)
        }
    }
}

fn eval_model(e: &Expr, bits: &[bool]) -> bool {
    match e {
        Expr::Var(i) => bits[*i as usize],
        Expr::Not(a) => !eval_model(a, bits),
        Expr::And(a, b) => eval_model(a, bits) && eval_model(b, bits),
        Expr::Or(a, b) => eval_model(a, bits) || eval_model(b, bits),
        Expr::Xor(a, b) => eval_model(a, bits) != eval_model(b, bits),
    }
}

proptest! {
    #[test]
    fn bdd_agrees_with_truth_table(e in expr_strategy()) {
        let mut m = BddManager::new(VARS);
        let p = build(&mut m, &e);
        let mut count = 0u64;
        for assignment in 0..(1u32 << VARS) {
            let bits: Vec<bool> = (0..VARS).map(|i| assignment >> i & 1 == 1).collect();
            let expected = eval_model(&e, &bits);
            prop_assert_eq!(m.eval(p, &bits), expected);
            count += u64::from(expected);
        }
        prop_assert_eq!(m.sat_count(p), count as f64);
    }

    #[test]
    fn canonicity(e in expr_strategy()) {
        // Building the same function twice (even via double negation)
        // yields the identical node handle.
        let mut m = BddManager::new(VARS);
        let p = build(&mut m, &e);
        let q = build(&mut m, &e);
        prop_assert_eq!(p, q);
        let np = m.not(p);
        let nnp = m.not(np);
        prop_assert_eq!(nnp, p);
    }

    #[test]
    fn export_import_round_trip(e in expr_strategy()) {
        let mut src = BddManager::new(VARS);
        let p = build(&mut src, &e);
        let enc = serial::export(&src, p);
        // Into a fresh manager with unrelated noise first.
        let mut dst = BddManager::new(VARS);
        let _noise = build(&mut dst, &Expr::Xor(
            Box::new(Expr::Var(0)),
            Box::new(Expr::Var(VARS - 1)),
        ));
        let q = serial::import(&mut dst, &enc).unwrap();
        let native = build(&mut dst, &e);
        prop_assert_eq!(q, native, "import must re-canonicalize to the same function");
    }

    #[test]
    fn exists_matches_model(e in expr_strategy(), lo in 0u32..VARS, width in 1u32..3) {
        let hi = (lo + width).min(VARS);
        let mut m = BddManager::new(VARS);
        let p = build(&mut m, &e);
        let q = m.exists_range(p, lo, hi);
        for assignment in 0..(1u32 << VARS) {
            let bits: Vec<bool> = (0..VARS).map(|i| assignment >> i & 1 == 1).collect();
            // ∃x_lo..x_hi . e — true iff some completion of those bits
            // satisfies e.
            let mut expected = false;
            let quantified = hi - lo;
            for fill in 0..(1u32 << quantified) {
                let mut b = bits.clone();
                for (k, item) in b.iter_mut().enumerate().take(hi as usize).skip(lo as usize) {
                    *item = fill >> (k as u32 - lo) & 1 == 1;
                }
                if eval_model(&e, &b) {
                    expected = true;
                    break;
                }
            }
            prop_assert_eq!(m.eval(q, &bits), expected);
        }
    }

    #[test]
    fn implies_is_subset(a in expr_strategy(), b in expr_strategy()) {
        let mut m = BddManager::new(VARS);
        let pa = build(&mut m, &a);
        let pb = build(&mut m, &b);
        let imp = m.implies(pa, pb);
        let mut model_subset = true;
        for assignment in 0..(1u32 << VARS) {
            let bits: Vec<bool> = (0..VARS).map(|i| assignment >> i & 1 == 1).collect();
            if eval_model(&a, &bits) && !eval_model(&b, &bits) {
                model_subset = false;
                break;
            }
        }
        prop_assert_eq!(imp, model_subset);
    }
}
