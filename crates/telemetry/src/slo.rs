//! Rolling SLO windows over the metrics registry.
//!
//! The always-on service must *hold* a latency budget, not just record
//! one: [`SloTracker`] turns the cumulative histograms of a
//! [`crate::MetricsRegistry`] into a bounded ring of per-window deltas
//! and judges the merged tail against a [`SloPolicy`]. Because the
//! registry's counters are monotone, a window is simply the bucket-wise
//! difference of two snapshots ([`HistSnapshot::delta`]), so the
//! tracker adds no per-observation cost to the hot path — verifiers
//! keep recording into the same sharded registry they always did, and
//! the service rolls a window at its own cadence (once per drained
//! request round).
//!
//! Verdicts are quantized to the histogram's 1-2-5 bucket grid: a
//! reported p99 is the upper bound of the bucket holding the 99th
//! percentile. That is deliberate — bucket bounds are stable across
//! runs while raw tail samples jitter, which is what lets CI gate on
//! them (see `ci.sh perf-gate`).

use std::collections::VecDeque;

use crate::metrics::{HistSnapshot, MetricsSnapshot, CONVERGENCE_LAG_NS, HANDLE_NS};

/// Latency budgets for the always-on service. All values are
/// nanoseconds in the metric's own unit: `p*_ns` bound the per-message
/// `DeviceVerifier::handle` time (scaled device CPU ns), `lag_p99_ns`
/// bounds the per-request convergence lag (virtual ns from admission
/// to quiescence of the applying round).
#[derive(Debug, Clone, Copy)]
pub struct SloPolicy {
    /// Median handle-time budget.
    pub p50_ns: u64,
    /// 90th-percentile handle-time budget.
    pub p90_ns: u64,
    /// 99th-percentile handle-time budget.
    pub p99_ns: u64,
    /// 99th-percentile convergence-lag budget.
    pub lag_p99_ns: u64,
    /// Rolling windows merged into a verdict (older windows fall off).
    pub windows: usize,
    /// Below this many handle samples the verdict abstains (`ok`,
    /// with `samples` exposing why).
    pub min_samples: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        // Generous single-core defaults: an order of magnitude above
        // the tiny-scale INet2 steady state, so a healthy service is
        // `ok` and a 10x tail regression breaches.
        SloPolicy {
            p50_ns: 1_000_000,         // 1 ms
            p90_ns: 5_000_000,         // 5 ms
            p99_ns: 20_000_000,        // 20 ms
            lag_p99_ns: 1_000_000_000, // 1 s
            windows: 8,
            min_samples: 16,
        }
    }
}

/// One rolled window: the handle-time and convergence-lag observations
/// made between two registry snapshots.
#[derive(Debug, Clone)]
struct SloWindow {
    handle: Option<HistSnapshot>,
    lag: Option<HistSnapshot>,
}

/// Rolling-window SLO judge over cumulative [`MetricsSnapshot`]s.
#[derive(Debug)]
pub struct SloTracker {
    policy: SloPolicy,
    last: MetricsSnapshot,
    ring: VecDeque<SloWindow>,
    rolls: u64,
}

impl SloTracker {
    /// A tracker with no windows yet.
    pub fn new(policy: SloPolicy) -> SloTracker {
        SloTracker {
            policy,
            last: MetricsSnapshot::default(),
            ring: VecDeque::new(),
            rolls: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Replaces the budgets (window count takes effect on the next
    /// roll; surplus old windows are dropped immediately).
    pub fn set_policy(&mut self, policy: SloPolicy) {
        self.policy = policy;
        while self.ring.len() > self.policy.windows.max(1) {
            self.ring.pop_front();
        }
    }

    /// Rolls one window: the delta of `snap` against the previous roll
    /// becomes the newest window, the oldest beyond the policy's ring
    /// size falls off.
    pub fn roll(&mut self, snap: &MetricsSnapshot) {
        let delta_of = |name: &str, snap: &MetricsSnapshot, last: &MetricsSnapshot| {
            let cur = snap.hists.get(name)?;
            Some(match last.hists.get(name) {
                Some(prev) => cur.delta(prev),
                None => cur.clone(),
            })
        };
        let w = SloWindow {
            handle: delta_of(HANDLE_NS.name, snap, &self.last),
            lag: delta_of(CONVERGENCE_LAG_NS.name, snap, &self.last),
        };
        self.ring.push_back(w);
        while self.ring.len() > self.policy.windows.max(1) {
            self.ring.pop_front();
        }
        self.last = snap.clone();
        self.rolls += 1;
    }

    /// Windows rolled since creation (monotone; the ring holds at most
    /// `policy.windows` of them).
    pub fn rolls(&self) -> u64 {
        self.rolls
    }

    /// Judges the merged ring against the policy.
    pub fn verdict(&self) -> SloVerdict {
        let merged = |pick: fn(&SloWindow) -> &Option<HistSnapshot>| -> Option<HistSnapshot> {
            let mut acc: Option<HistSnapshot> = None;
            for w in &self.ring {
                if let Some(h) = pick(w) {
                    match &mut acc {
                        Some(a) => a.merge(h),
                        None => acc = Some(h.clone()),
                    }
                }
            }
            acc
        };
        let handle = merged(|w| &w.handle);
        let lag = merged(|w| &w.lag);
        let q = |h: &Option<HistSnapshot>, p: f64| h.as_ref().and_then(|h| h.quantile(p));
        let mut v = SloVerdict {
            p50_ns: q(&handle, 0.50),
            p90_ns: q(&handle, 0.90),
            p99_ns: q(&handle, 0.99),
            lag_p99_ns: q(&lag, 0.99),
            samples: handle.as_ref().map_or(0, |h| h.count),
            lag_samples: lag.as_ref().map_or(0, |h| h.count),
            windows: self.ring.len(),
            breaches: Vec::new(),
        };
        if v.samples >= self.policy.min_samples {
            let mut check = |what: &str, got: Option<u64>, budget: u64| {
                if let Some(got) = got {
                    if got > budget {
                        v.breaches
                            .push(format!("{what} {got}ns > budget {budget}ns"));
                    }
                }
            };
            check("handle p50", v.p50_ns, self.policy.p50_ns);
            check("handle p90", v.p90_ns, self.policy.p90_ns);
            check("handle p99", v.p99_ns, self.policy.p99_ns);
            check("convergence-lag p99", v.lag_p99_ns, self.policy.lag_p99_ns);
        }
        v
    }
}

/// The outcome of judging the rolling windows against the budgets.
#[derive(Debug, Clone, Default)]
pub struct SloVerdict {
    /// Median handle time over the merged windows (bucket bound).
    pub p50_ns: Option<u64>,
    /// 90th-percentile handle time.
    pub p90_ns: Option<u64>,
    /// 99th-percentile handle time.
    pub p99_ns: Option<u64>,
    /// 99th-percentile convergence lag.
    pub lag_p99_ns: Option<u64>,
    /// Handle observations inside the merged windows.
    pub samples: u64,
    /// Lag observations inside the merged windows.
    pub lag_samples: u64,
    /// Windows merged into this verdict.
    pub windows: usize,
    /// Every budget the merged tail exceeds (empty = within budget).
    pub breaches: Vec<String>,
}

impl SloVerdict {
    /// Within budget? Abstaining verdicts (too few samples) hold.
    pub fn ok(&self) -> bool {
        self.breaches.is_empty()
    }

    /// The verdict as a compact JSON object (the daemon's `slo`
    /// response and `tulkun status` payload).
    pub fn to_json(&self) -> tulkun_json::Json {
        use tulkun_json::Json;
        let opt = |v: Option<u64>| match v {
            Some(n) => Json::Int(n as i64),
            None => Json::Null,
        };
        Json::Object(vec![
            ("ok".into(), Json::Bool(self.ok())),
            ("p50_ns".into(), opt(self.p50_ns)),
            ("p90_ns".into(), opt(self.p90_ns)),
            ("p99_ns".into(), opt(self.p99_ns)),
            ("lag_p99_ns".into(), opt(self.lag_p99_ns)),
            ("samples".into(), Json::Int(self.samples as i64)),
            ("lag_samples".into(), Json::Int(self.lag_samples as i64)),
            ("windows".into(), Json::Int(self.windows as i64)),
            (
                "breaches".into(),
                tulkun_json::ToJson::to_json(&self.breaches),
            ),
        ])
    }

    /// The verdict as Prometheus text exposition lines (appended to
    /// the registry export by the service's `metrics` response).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut gauge = |name: &str, v: i64| {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        };
        gauge("tulkun_slo_ok", self.ok() as i64);
        gauge("tulkun_slo_breaches", self.breaches.len() as i64);
        gauge("tulkun_slo_windows", self.windows as i64);
        gauge("tulkun_slo_handle_samples", self.samples as i64);
        gauge("tulkun_slo_handle_p50_ns", self.p50_ns.unwrap_or(0) as i64);
        gauge("tulkun_slo_handle_p90_ns", self.p90_ns.unwrap_or(0) as i64);
        gauge("tulkun_slo_handle_p99_ns", self.p99_ns.unwrap_or(0) as i64);
        gauge(
            "tulkun_slo_convergence_lag_p99_ns",
            self.lag_p99_ns.unwrap_or(0) as i64,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use tulkun_netmodel::topology::DeviceId;

    fn dev(i: u32) -> DeviceId {
        DeviceId(i)
    }

    fn policy() -> SloPolicy {
        SloPolicy {
            p50_ns: 10_000,
            p90_ns: 100_000,
            p99_ns: 1_000_000,
            lag_p99_ns: 10_000_000,
            windows: 2,
            min_samples: 1,
        }
    }

    #[test]
    fn windows_are_deltas_not_cumulative() {
        let reg = MetricsRegistry::new();
        let mut slo = SloTracker::new(policy());
        for _ in 0..10 {
            reg.observe(dev(0), &HANDLE_NS, 5_000);
        }
        slo.roll(&reg.snapshot());
        assert_eq!(slo.verdict().samples, 10);
        // A second roll with no new observations is an empty window.
        slo.roll(&reg.snapshot());
        assert_eq!(
            slo.verdict().samples,
            10,
            "delta windows must not double-count"
        );
        for _ in 0..4 {
            reg.observe(dev(0), &HANDLE_NS, 5_000);
        }
        slo.roll(&reg.snapshot());
        // Ring size 2: the first 10-sample window fell off.
        assert_eq!(slo.verdict().samples, 4);
        assert_eq!(slo.rolls(), 3);
    }

    #[test]
    fn breaches_name_the_budget() {
        let reg = MetricsRegistry::new();
        let mut slo = SloTracker::new(policy());
        for _ in 0..98 {
            reg.observe(dev(0), &HANDLE_NS, 1_000);
        }
        reg.observe(dev(0), &HANDLE_NS, 40_000_000); // blown tail
        reg.observe(dev(0), &HANDLE_NS, 40_000_000); // rank 99 of 100 lands here
        reg.observe(dev(0), &CONVERGENCE_LAG_NS, 1_000_000);
        slo.roll(&reg.snapshot());
        let v = slo.verdict();
        assert!(!v.ok());
        assert_eq!(v.breaches.len(), 1, "{:?}", v.breaches);
        assert!(v.breaches[0].contains("handle p99"));
        assert_eq!(v.p50_ns, Some(1_000));
        assert_eq!(v.lag_p99_ns, Some(1_000_000));
        assert!(v.prometheus_text().contains("tulkun_slo_ok 0"));
    }

    #[test]
    fn too_few_samples_abstains() {
        let reg = MetricsRegistry::new();
        let mut slo = SloTracker::new(SloPolicy {
            min_samples: 100,
            ..policy()
        });
        reg.observe(dev(0), &HANDLE_NS, u64::MAX / 2);
        slo.roll(&reg.snapshot());
        let v = slo.verdict();
        assert!(v.ok(), "abstaining verdicts hold");
        assert_eq!(v.samples, 1);
    }

    #[test]
    fn verdict_json_shape() {
        let slo = SloTracker::new(policy());
        let j = tulkun_json::to_string(&slo.verdict().to_json());
        assert!(j.contains("\"ok\":true"), "{j}");
        assert!(j.contains("\"p99_ns\":null"), "{j}");
    }
}
