//! Metrics registry: named counters, gauges and fixed-bucket
//! histograms behind [`crate::SHARDS`] lock shards keyed by device
//! index — the `LecCache` sharding rule, so one-thread-per-device
//! runtimes never contend.

use std::collections::BTreeMap;
use std::sync::Mutex;

use tulkun_netmodel::topology::DeviceId;

use crate::SHARDS;

/// Static description of a histogram: name + ascending bucket upper
/// bounds. Values above the last bound land in an implicit overflow
/// (`+Inf`) bucket. Declare as `const` so call sites carry no
/// allocation.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSpec {
    /// Metric name (Prometheus-style, e.g. `tulkun_dvm_handle_ns`).
    pub name: &'static str,
    /// Ascending upper bounds, in the metric's unit.
    pub bounds: &'static [u64],
}

/// Shared nanosecond bucket bounds: 1 µs … 1 s, roughly 1-2-5.
pub const NS_BOUNDS: &[u64] = &[
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    1_000_000_000,
];

/// Per-message `DeviceVerifier::handle` latency.
pub const HANDLE_NS: HistogramSpec = HistogramSpec {
    name: "tulkun_dvm_handle_ns",
    bounds: NS_BOUNDS,
};

/// LEC table delta/splice latency inside `handle_fib_batch`.
pub const LEC_DELTA_NS: HistogramSpec = HistogramSpec {
    name: "tulkun_lec_delta_ns",
    bounds: NS_BOUNDS,
};

/// Single-node CIB recomputation latency.
pub const CIB_RECOMPUTE_NS: HistogramSpec = HistogramSpec {
    name: "tulkun_cib_recompute_ns",
    bounds: NS_BOUNDS,
};

/// Whole `handle_fib_batch` call latency.
pub const FIB_BATCH_NS: HistogramSpec = HistogramSpec {
    name: "tulkun_fib_batch_ns",
    bounds: NS_BOUNDS,
};

/// Per-request convergence lag in the always-on service: virtual ns
/// from a request's admission to the quiescence of the round it was
/// applied in.
pub const CONVERGENCE_LAG_NS: HistogramSpec = HistogramSpec {
    name: "tulkun_convergence_lag_ns",
    bounds: NS_BOUNDS,
};

#[derive(Debug, Clone)]
struct Hist {
    bounds: &'static [u64],
    /// One count per bound plus the overflow bucket.
    buckets: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Hist {
    fn new(bounds: &'static [u64]) -> Hist {
        Hist {
            bounds,
            buckets: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.sum = self.sum.saturating_add(value);
        self.count += 1;
    }
}

#[derive(Debug, Default)]
struct Shard {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    /// Labeled gauge families: `(family, label)` → value, where
    /// `label` is one rendered Prometheus pair like `intent="3"`.
    labeled_gauges: BTreeMap<(&'static str, String), i64>,
    hists: BTreeMap<&'static str, Hist>,
}

/// Sharded metrics sink; see [`crate::Telemetry`] for the recording
/// API and [`MetricsSnapshot`] for reading.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<Mutex<Shard>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    fn shard(&self, dev: DeviceId) -> &Mutex<Shard> {
        &self.shards[dev.idx() % SHARDS]
    }

    /// Add `n` to counter `name` in `dev`'s shard.
    pub fn count(&self, dev: DeviceId, name: &'static str, n: u64) {
        let mut s = self.shard(dev).lock().unwrap();
        *s.counters.entry(name).or_insert(0) += n;
    }

    /// Set gauge `name` in `dev`'s shard; the snapshot reports the
    /// maximum across shards.
    pub fn gauge_set(&self, dev: DeviceId, name: &'static str, value: i64) {
        let mut s = self.shard(dev).lock().unwrap();
        s.gauges.insert(name, value);
    }

    /// Set one series of the labeled gauge family `name` in `dev`'s
    /// shard. `label` is a single rendered Prometheus pair, e.g.
    /// `intent="3"`; the snapshot reports the maximum across shards
    /// per series.
    pub fn gauge_set_labeled(&self, dev: DeviceId, name: &'static str, label: &str, value: i64) {
        let mut s = self.shard(dev).lock().unwrap();
        s.labeled_gauges.insert((name, label.to_string()), value);
    }

    /// Record `value` into the histogram described by `spec`.
    pub fn observe(&self, dev: DeviceId, spec: &HistogramSpec, value: u64) {
        let mut s = self.shard(dev).lock().unwrap();
        s.hists
            .entry(spec.name)
            .or_insert_with(|| Hist::new(spec.bounds))
            .observe(value);
    }

    /// Merge every shard into one snapshot: counters and histogram
    /// buckets sum; gauges take the shard maximum (they track
    /// high-water marks).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap();
            for (&name, &v) in &s.counters {
                *snap.counters.entry(name.to_string()).or_insert(0) += v;
            }
            for (&name, &v) in &s.gauges {
                let e = snap.gauges.entry(name.to_string()).or_insert(i64::MIN);
                *e = (*e).max(v);
            }
            for ((name, label), &v) in &s.labeled_gauges {
                let e = snap
                    .labeled_gauges
                    .entry((name.to_string(), label.clone()))
                    .or_insert(i64::MIN);
                *e = (*e).max(v);
            }
            for (&name, h) in &s.hists {
                let e = snap
                    .hists
                    .entry(name.to_string())
                    .or_insert_with(|| HistSnapshot {
                        bounds: h.bounds.to_vec(),
                        buckets: vec![0; h.buckets.len()],
                        sum: 0,
                        count: 0,
                    });
                for (b, v) in e.buckets.iter_mut().zip(&h.buckets) {
                    *b += v;
                }
                e.sum = e.sum.saturating_add(h.sum);
                e.count += h.count;
            }
        }
        snap
    }
}

/// Merged view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; the final entry is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistSnapshot {
    /// Upper bound of the bucket containing the `q`-quantile
    /// (0 < q ≤ 1). Observations in the overflow bucket report the
    /// last finite bound — a lower bound on the true quantile. `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    *self.bounds.last().expect("histogram has bounds")
                });
            }
        }
        self.bounds.last().copied()
    }

    /// An empty snapshot over the same bucket bounds.
    pub fn empty_like(&self) -> HistSnapshot {
        HistSnapshot {
            bounds: self.bounds.clone(),
            buckets: vec![0; self.buckets.len()],
            sum: 0,
            count: 0,
        }
    }

    /// Bucket-wise difference `self - prev` of two cumulative
    /// snapshots of the same histogram (counters are monotone, so the
    /// result is the observations made between the two snapshots).
    /// Saturates rather than panicking if `prev` is not actually an
    /// earlier snapshot (mismatched bounds fall back to `self`).
    pub fn delta(&self, prev: &HistSnapshot) -> HistSnapshot {
        if prev.bounds != self.bounds || prev.buckets.len() != self.buckets.len() {
            return self.clone();
        }
        HistSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&prev.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.saturating_sub(prev.sum),
            count: self.count.saturating_sub(prev.count),
        }
    }

    /// Adds another snapshot's buckets into this one (same bounds
    /// required; mismatches are ignored).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.bounds != self.bounds || other.buckets.len() != self.buckets.len() {
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.count += other.count;
    }
}

/// Point-in-time merge of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter name → summed value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → maximum shard value.
    pub gauges: BTreeMap<String, i64>,
    /// Labeled gauge `(family, rendered label pair)` → maximum shard
    /// value, e.g. `("tulkun_intent_fresh", "intent=\"3\"")`.
    pub labeled_gauges: BTreeMap<(String, String), i64>,
    /// Histogram name → merged buckets.
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.labeled_gauges.is_empty()
            && self.hists.is_empty()
    }

    /// `quantile(q)` of histogram `name`, if present and non-empty.
    pub fn percentile(&self, name: &str, q: f64) -> Option<u64> {
        self.hists.get(name).and_then(|h| h.quantile(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(i: u32) -> DeviceId {
        DeviceId(i)
    }

    const TINY: HistogramSpec = HistogramSpec {
        name: "tiny",
        bounds: &[10, 100, 1000],
    };

    #[test]
    fn hand_computed_bucket_counts_are_exact() {
        let reg = MetricsRegistry::new();
        // Buckets: (..=10], (..=100], (..=1000], +Inf.
        for v in [1, 10, 11, 100, 101, 1000, 1001, 5000] {
            reg.observe(dev(3), &TINY, v);
        }
        let snap = reg.snapshot();
        let h = &snap.hists["tiny"];
        assert_eq!(h.buckets, vec![2, 2, 2, 2]);
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 1 + 10 + 11 + 100 + 101 + 1000 + 1001 + 5000);
    }

    #[test]
    fn shards_merge_counters_and_buckets() {
        let reg = MetricsRegistry::new();
        // Devices 0 and 16 share a shard; 1 lands elsewhere.
        reg.count(dev(0), "msgs", 2);
        reg.count(dev(16), "msgs", 3);
        reg.count(dev(1), "msgs", 5);
        reg.observe(dev(0), &TINY, 5);
        reg.observe(dev(1), &TINY, 500);
        reg.gauge_set(dev(0), "hw", 7);
        reg.gauge_set(dev(1), "hw", 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["msgs"], 10);
        assert_eq!(snap.hists["tiny"].buckets, vec![1, 0, 1, 0]);
        assert_eq!(snap.gauges["hw"], 7);
    }

    #[test]
    fn quantiles_from_buckets() {
        let reg = MetricsRegistry::new();
        for _ in 0..90 {
            reg.observe(dev(0), &TINY, 10);
        }
        for _ in 0..9 {
            reg.observe(dev(0), &TINY, 100);
        }
        reg.observe(dev(0), &TINY, 99_999); // overflow bucket
        let snap = reg.snapshot();
        assert_eq!(snap.percentile("tiny", 0.50), Some(10));
        assert_eq!(snap.percentile("tiny", 0.90), Some(10));
        assert_eq!(snap.percentile("tiny", 0.95), Some(100));
        // p100 sits in the overflow bucket → last finite bound.
        assert_eq!(snap.percentile("tiny", 1.0), Some(1000));
        assert_eq!(snap.percentile("absent", 0.5), None);
    }
}
