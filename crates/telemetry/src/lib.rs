#![warn(missing_docs)]
//! Observability for the Tulkun runtimes: a span tracer with
//! per-device ring buffers, a sharded metrics registry (counters,
//! gauges, fixed-bucket histograms), and deterministic exporters for
//! Chrome `trace_event` JSON (Perfetto / `about:tracing`) and
//! Prometheus text exposition.
//!
//! The crate is dependency-free beyond the first-party `tulkun-json`
//! and `tulkun-netmodel` crates, so it builds in the offline
//! environment and can be linked from `tulkun-core` without cycles.
//!
//! # Design
//!
//! All recording goes through one [`Telemetry`] handle, shared as
//! `Arc<Telemetry>` across engines, verifiers, transports and worker
//! threads. Every record method checks the `enabled` flag *before*
//! touching any shard lock, so the disabled path — the default for
//! every substrate — is a branch on an immutable bool and nothing
//! else: no allocation, no atomics, no locks. This is what lets the
//! fault-matrix and equivalence suites run with telemetry compiled in
//! but switched off at zero measurable cost.
//!
//! When enabled, spans land in per-device ring buffers and metric
//! updates land in one of [`SHARDS`] lock shards selected by
//! `device.idx() % SHARDS` — the same sharding rule as the runtime's
//! `LecCache` — so the `ThreadedEngine`'s one-thread-per-device
//! workers never contend on a telemetry lock.
//!
//! Spans carry a monotonic tick (nanoseconds since the handle's
//! creation), a causal `trace` id threaded through `Envelope` so one
//! FIB update's UPDATE wave can be reconstructed across devices, and
//! an `aux` word for substrate-specific context (the virtual-clock
//! time under `DvmSim`, the worker index for `parallel_init` spans).

mod export;
mod journal;
mod metrics;
mod slo;
mod trace;

pub use export::{chrome_trace_json, chrome_trace_json_with_journal, prometheus_text};
pub use journal::{journal_json, Journal, JournalEvent, JournalKind};
pub use metrics::{
    HistSnapshot, HistogramSpec, MetricsRegistry, MetricsSnapshot, CIB_RECOMPUTE_NS,
    CONVERGENCE_LAG_NS, FIB_BATCH_NS, HANDLE_NS, LEC_DELTA_NS, NS_BOUNDS,
};
pub use slo::{SloPolicy, SloTracker, SloVerdict};
pub use trace::{SpanEvent, Tracer};

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use tulkun_netmodel::topology::DeviceId;

/// Number of lock shards in the tracer and the metrics registry;
/// mirrors the runtime's `LecCache` so one-thread-per-device workers
/// land on distinct shards.
pub const SHARDS: usize = 16;

/// Configuration for a [`Telemetry`] handle.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Master switch. When `false`, every record call returns after a
    /// single branch: no shard lock is ever taken.
    pub enabled: bool,
    /// Per-device span ring capacity; the oldest span is overwritten
    /// once a device exceeds it (overwrites are counted, see
    /// [`Telemetry::spans_dropped`]).
    pub ring_capacity: usize,
    /// Causal flight-recorder ring capacity; 0 disables the journal
    /// even when spans/metrics are on (the oldest entry is evicted
    /// once full, see [`Telemetry::journal_dropped`]). The journal is
    /// active only when `enabled` is also set.
    pub journal_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            ring_capacity: 4096,
            journal_capacity: 1024,
        }
    }
}

impl TelemetryConfig {
    /// An enabled config with default ring capacity.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        }
    }

    /// An enabled config with the journal switched off — spans and
    /// metrics record, the flight recorder does not.
    pub fn enabled_without_journal() -> Self {
        TelemetryConfig {
            enabled: true,
            journal_capacity: 0,
            ..TelemetryConfig::default()
        }
    }
}

/// Shared recording surface: tracer + metrics registry behind one
/// enabled flag. Construct once per run and clone the `Arc` into
/// every engine, verifier and transport.
pub struct Telemetry {
    enabled: bool,
    epoch: Instant,
    tracer: Tracer,
    registry: MetricsRegistry,
    /// Causal flight recorder; inactive when `journal_on` is false
    /// (disabled handle or `journal_capacity == 0`).
    journal: Journal,
    journal_on: bool,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// A handle with the given configuration.
    pub fn new(cfg: TelemetryConfig) -> Arc<Telemetry> {
        Arc::new(Telemetry {
            enabled: cfg.enabled,
            epoch: Instant::now(),
            tracer: Tracer::new(cfg.ring_capacity),
            registry: MetricsRegistry::new(),
            journal: Journal::new(cfg.journal_capacity),
            journal_on: cfg.enabled && cfg.journal_capacity > 0,
        })
    }

    /// The default, disabled handle: every record call is a no-op.
    pub fn disabled() -> Arc<Telemetry> {
        Telemetry::new(TelemetryConfig::default())
    }

    /// An enabled handle with default capacity.
    pub fn enabled() -> Arc<Telemetry> {
        Telemetry::new(TelemetryConfig::enabled())
    }

    /// Whether recording is on. Callers doing non-trivial work to
    /// *prepare* a record (e.g. reading a clock) should check this
    /// first; the record methods also check it themselves.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Monotonic tick: nanoseconds since this handle was created.
    /// Returns 0 when disabled so callers need no separate branch.
    pub fn host_tick(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a completed span (`dur` > 0) for `dev`.
    pub fn span(
        &self,
        dev: DeviceId,
        name: &'static str,
        cat: &'static str,
        begin: u64,
        dur: u64,
        trace: u64,
    ) {
        self.span_aux(dev, name, cat, begin, dur, trace, 0);
    }

    /// Record a completed span with an auxiliary word (virtual-clock
    /// time, worker index, ...).
    #[allow(clippy::too_many_arguments)]
    pub fn span_aux(
        &self,
        dev: DeviceId,
        name: &'static str,
        cat: &'static str,
        begin: u64,
        dur: u64,
        trace: u64,
        aux: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.tracer.record(SpanEvent {
            device: dev,
            name,
            cat,
            begin,
            dur,
            trace,
            aux,
        });
    }

    /// Record an instantaneous event (duration 0) for `dev`.
    pub fn instant(
        &self,
        dev: DeviceId,
        name: &'static str,
        cat: &'static str,
        tick: u64,
        trace: u64,
    ) {
        self.span_aux(dev, name, cat, tick, 0, trace, 0);
    }

    /// Add `n` to the counter `name` (shard chosen by `dev`).
    pub fn count(&self, dev: DeviceId, name: &'static str, n: u64) {
        if !self.enabled {
            return;
        }
        self.registry.count(dev, name, n);
    }

    /// Set the gauge `name` for `dev`'s shard. Snapshots report the
    /// maximum across shards (gauges here track high-water marks).
    pub fn gauge_set(&self, dev: DeviceId, name: &'static str, value: i64) {
        if !self.enabled {
            return;
        }
        self.registry.gauge_set(dev, name, value);
    }

    /// Set one series of the labeled gauge family `name` (shard chosen
    /// by `dev`). `label` is one rendered Prometheus pair, e.g.
    /// `intent="3"`.
    pub fn gauge_set_labeled(&self, dev: DeviceId, name: &'static str, label: &str, value: i64) {
        if !self.enabled {
            return;
        }
        self.registry.gauge_set_labeled(dev, name, label, value);
    }

    /// Record `value` into the fixed-bucket histogram described by
    /// `spec` (shard chosen by `dev`).
    pub fn observe(&self, dev: DeviceId, spec: &HistogramSpec, value: u64) {
        if !self.enabled {
            return;
        }
        self.registry.observe(dev, spec, value);
    }

    /// All recorded spans, merged across devices and sorted by
    /// `(begin, device, name)` — deterministic for equal inputs.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.tracer.snapshot()
    }

    /// Spans overwritten because a device's ring filled up.
    pub fn spans_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    /// A merged snapshot of every counter, gauge and histogram.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Whether the causal flight recorder is active (telemetry enabled
    /// *and* a non-zero journal capacity). Callers assembling a detail
    /// string should branch on this first; [`Telemetry::journal`]
    /// checks it again itself.
    pub fn journal_on(&self) -> bool {
        self.journal_on
    }

    /// Record one flight-recorder entry. `detail` is only rendered
    /// when the journal is active, so the disabled path stays a single
    /// branch with no allocation.
    pub fn journal(
        &self,
        kind: JournalKind,
        dev: DeviceId,
        epoch: u64,
        trace: u64,
        intent: Option<u64>,
        detail: impl FnOnce() -> String,
    ) {
        if !self.journal_on {
            return;
        }
        self.journal
            .record(kind, dev, epoch, trace, intent, detail());
    }

    /// Set (or clear with `None`) the request-source scope stamped
    /// onto subsequent journal entries — the service layer brackets
    /// each daemon request with this so causality can be filtered by
    /// source.
    pub fn journal_scope(&self, source: Option<&str>) {
        if !self.journal_on {
            return;
        }
        self.journal.set_source(source.map(str::to_string));
    }

    /// Retained journal entries, oldest first (seq ascending). Empty
    /// when the journal is inactive.
    pub fn journal_events(&self) -> Vec<JournalEvent> {
        if !self.journal_on {
            return Vec::new();
        }
        self.journal.snapshot()
    }

    /// Journal entries evicted because the ring filled up.
    pub fn journal_dropped(&self) -> u64 {
        if !self.journal_on {
            return 0;
        }
        self.journal.dropped()
    }

    /// Total journal entries ever recorded (including evicted ones).
    pub fn journal_recorded(&self) -> u64 {
        if !self.journal_on {
            return 0;
        }
        self.journal.recorded()
    }

    /// The retained journal as the deterministic dump document
    /// (`tulkun-journal-v1` schema).
    pub fn journal_json(&self) -> String {
        journal_json(&self.journal_events(), self.journal_dropped())
    }

    /// The recorded spans as Chrome `trace_event` JSON, with the
    /// journal riding along as an instant-event lane (cat
    /// `"journal"`, timestamped by `seq`) so flight-recorder entries
    /// open in Perfetto next to the spans.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json_with_journal(&self.spans(), &self.journal_events())
    }

    /// The merged metrics as Prometheus text exposition.
    pub fn prometheus_text(&self) -> String {
        prometheus_text(&self.metrics())
    }
}

/// Fixed-capacity uniform sample reservoir with a deterministic
/// xorshift replacement stream. Bounds `RuntimeStats::msg_ns_samples`
/// over arbitrarily long replay runs: the first [`Reservoir::capacity`]
/// values are kept verbatim; after that each new value replaces a
/// random kept one with probability `capacity / seen`, so the kept set
/// stays a uniform sample of everything pushed. Determinism: the
/// replacement stream is seeded by a fixed constant, so equal push
/// sequences keep equal samples on every run.
#[derive(Debug, Clone)]
pub struct Reservoir {
    samples: Vec<u64>,
    cap: usize,
    seen: u64,
    rng: u64,
}

/// Default reservoir capacity (64 Ki samples ≈ 512 KiB).
pub const RESERVOIR_CAP: usize = 65_536;

impl Default for Reservoir {
    fn default() -> Self {
        Reservoir::with_capacity(RESERVOIR_CAP)
    }
}

impl Reservoir {
    /// A reservoir keeping at most `cap` samples.
    pub fn with_capacity(cap: usize) -> Reservoir {
        assert!(cap > 0, "reservoir capacity must be positive");
        Reservoir {
            samples: Vec::new(),
            cap,
            seen: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_rng(&mut self) -> u64 {
        // xorshift64*; deterministic, no external dependency.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Offer one value to the reservoir.
    pub fn push(&mut self, value: u64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(value);
            return;
        }
        let j = (self.next_rng() % self.seen) as usize;
        if j < self.cap {
            self.samples[j] = value;
        }
    }

    /// Kept samples (≤ capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples are kept.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total values offered, including ones not kept.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The kept samples, in insertion/replacement order.
    pub fn as_slice(&self) -> &[u64] {
        &self.samples
    }

    /// Take the kept samples, leaving the reservoir empty (seen count
    /// resets too, matching `drain_msg_samples` semantics).
    pub fn drain(&mut self) -> Vec<u64> {
        self.seen = 0;
        std::mem::take(&mut self.samples)
    }

    /// Merge another reservoir's kept samples into this one.
    pub fn absorb(&mut self, other: &mut Reservoir) {
        for v in other.drain() {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(i: u32) -> DeviceId {
        DeviceId(i)
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        tel.span(dev(0), "x", "test", 1, 2, 3);
        tel.count(dev(0), "c", 5);
        tel.observe(dev(0), &HANDLE_NS, 100);
        assert!(tel.spans().is_empty());
        let m = tel.metrics();
        assert!(m.counters.is_empty() && m.hists.is_empty());
        assert_eq!(tel.host_tick(), 0);
    }

    #[test]
    fn spans_merge_sorted_across_devices() {
        let tel = Telemetry::enabled();
        tel.span(dev(3), "b", "test", 20, 5, 1);
        tel.span(dev(1), "a", "test", 10, 5, 1);
        tel.span(dev(1), "c", "test", 30, 5, 2);
        let spans = tel.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].begin, 10);
        assert_eq!(spans[1].begin, 20);
        assert_eq!(spans[2].begin, 30);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let tel = Telemetry::new(TelemetryConfig {
            enabled: true,
            ring_capacity: 2,
            ..TelemetryConfig::default()
        });
        tel.span(dev(0), "a", "t", 1, 1, 0);
        tel.span(dev(0), "b", "t", 2, 1, 0);
        tel.span(dev(0), "c", "t", 3, 1, 0);
        let spans = tel.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "b");
        assert_eq!(spans[1].name, "c");
        assert_eq!(tel.spans_dropped(), 1);
    }

    #[test]
    fn reservoir_keeps_everything_under_cap() {
        let mut r = Reservoir::with_capacity(8);
        for v in 0..8 {
            r.push(v);
        }
        assert_eq!(r.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(r.seen(), 8);
        let drained = r.drain();
        assert_eq!(drained.len(), 8);
        assert!(r.is_empty());
        assert_eq!(r.seen(), 0);
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic() {
        let run = || {
            let mut r = Reservoir::with_capacity(16);
            for v in 0..10_000u64 {
                r.push(v);
            }
            r.as_slice().to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 16);
        assert_eq!(a, b, "replacement stream must be deterministic");
        assert!(a.iter().any(|&v| v >= 16), "late values must be sampled in");
    }
}
