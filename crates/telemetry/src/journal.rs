//! Causal flight recorder: a bounded, deterministic ring journal of
//! structured runtime events.
//!
//! Where the span [`crate::Tracer`] answers "how long did this take",
//! the journal answers "what happened, in what order, and why": epoch
//! fences, topology/intent churn, fault injections, retransmissions,
//! crash/restart waves, watchdog verdicts and admission decisions,
//! each stamped with the epoch, the causal trace id threaded through
//! `Envelope`, the device and (where known) the intent it belongs to.
//!
//! Determinism is the design constraint the tracer does not have:
//! journal entries carry **no wall-clock field** — only the monotonic
//! `seq` assigned under one global lock — so two runs of the same
//! seeded scenario produce byte-identical journal dumps, and the
//! explain engine built on top can promise byte-identical causal
//! chains across reruns. Journal events are control-plane-rate (churn,
//! faults, fences — not per-DVM-message), so a single mutex is cheap
//! and buys a globally ordered record.
//!
//! The disabled path is zero-overhead in the same way as the rest of
//! the crate: recording checks one immutable bool before touching the
//! lock or rendering any detail string.

use std::collections::VecDeque;
use std::sync::Mutex;

use tulkun_json::Json;
use tulkun_netmodel::topology::DeviceId;

/// What happened. Variants map 1:1 to snake_case strings in the dump
/// schema (see [`JournalKind::as_str`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JournalKind {
    /// A burst of FIB rule updates was injected.
    BatchApplied,
    /// A raw link up/down event was delivered to both endpoints.
    LinkEvent,
    /// A fault-scene task swap (link-state flooding recount).
    SceneApplied,
    /// The epoch fence was bumped: everything in flight is superseded.
    EpochFence,
    /// A live topology churn event (link/device up/down) was applied.
    TopologyChurn,
    /// A churn request was rejected (unsupported under live intents…).
    ChurnRejected,
    /// A runtime intent was compiled and installed.
    IntentInstalled,
    /// A runtime intent was removed.
    IntentRemoved,
    /// An intent install/remove request was rejected.
    IntentRejected,
    /// An install raced a topology fence and was queued for re-planning
    /// against the next epoch (bounded by the retry cap).
    IntentParked,
    /// A live or parked intent's slice was re-planned under a churn
    /// fence (it landed, revived, or re-tasked).
    IntentReplanned,
    /// A live intent's slice cannot be planned on the current topology;
    /// it is degraded (excluded from evaluation) until a fence revives
    /// it.
    IntentDegraded,
    /// The fault-injecting transport dropped/duplicated/reordered/
    /// delayed an envelope (detail names which).
    FaultInjected,
    /// The reliable delivery layer retransmitted an envelope.
    Retransmit,
    /// A device's verification agent crashed and was restarted.
    CrashRestart,
    /// The convergence watchdog declared a device stalled.
    WatchdogStall,
    /// The admission policy shed the oldest queued request.
    AdmissionShed,
    /// The admission policy blocked (rejected) an incoming request.
    AdmissionBlocked,
    /// A rolling SLO window closed in breach.
    SloBreach,
    /// The service hot-swapped the predicate backend.
    BackendSwap,
}

impl JournalKind {
    /// The stable snake_case name used in the dump schema.
    pub fn as_str(&self) -> &'static str {
        use JournalKind as K;
        match self {
            K::BatchApplied => "batch_applied",
            K::LinkEvent => "link_event",
            K::SceneApplied => "scene_applied",
            K::EpochFence => "epoch_fence",
            K::TopologyChurn => "topology_churn",
            K::ChurnRejected => "churn_rejected",
            K::IntentInstalled => "intent_installed",
            K::IntentRemoved => "intent_removed",
            K::IntentRejected => "intent_rejected",
            K::IntentParked => "intent_parked",
            K::IntentReplanned => "intent_replanned",
            K::IntentDegraded => "intent_degraded",
            K::FaultInjected => "fault_injected",
            K::Retransmit => "retransmit",
            K::CrashRestart => "crash_restart",
            K::WatchdogStall => "watchdog_stall",
            K::AdmissionShed => "admission_shed",
            K::AdmissionBlocked => "admission_blocked",
            K::SloBreach => "slo_breach",
            K::BackendSwap => "backend_swap",
        }
    }
}

/// One journal entry. Deliberately wall-clock-free: `seq` is the only
/// ordering key, so equal runs dump byte-equal journals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Global sequence number (1-based, monotonic across devices).
    pub seq: u64,
    /// What happened.
    pub kind: JournalKind,
    /// The device the event is about (the churned/crashed/faulted
    /// device; the first participating device for global fences).
    pub device: DeviceId,
    /// Topology/intent generation at record time.
    pub epoch: u64,
    /// Causal trace id threaded through `Envelope`; 0 = untraced.
    pub trace: u64,
    /// The runtime intent the event belongs to, where known.
    pub intent: Option<u64>,
    /// Human-oriented detail, deterministic for a given seeded run
    /// (e.g. `"link-down d2-d3"`, `"fault.drop to d9"`).
    pub detail: String,
    /// The daemon request source the event was recorded under, when
    /// the service layer scoped one (see `Telemetry::journal_scope`).
    pub source: Option<String>,
}

impl JournalEvent {
    /// The entry as a deterministic JSON object (stable key order;
    /// `intent` / `source` omitted when absent).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("seq".into(), Json::Int(self.seq as i64)),
            ("kind".into(), Json::Str(self.kind.as_str().into())),
            ("device".into(), Json::Int(self.device.0 as i64)),
            ("epoch".into(), Json::Int(self.epoch as i64)),
            ("trace".into(), Json::Int(self.trace as i64)),
        ];
        if let Some(id) = self.intent {
            obj.push(("intent".into(), Json::Int(id as i64)));
        }
        obj.push(("detail".into(), Json::Str(self.detail.clone())));
        if let Some(src) = &self.source {
            obj.push(("source".into(), Json::Str(src.clone())));
        }
        Json::Object(obj)
    }
}

#[derive(Debug, Default)]
struct JournalInner {
    ring: VecDeque<JournalEvent>,
    next_seq: u64,
    dropped: u64,
    /// Current attribution scope: daemon request source being applied.
    source: Option<String>,
}

/// The bounded ring journal. One global mutex: entries are
/// control-plane-rate and the single lock is what makes `seq` a total
/// deterministic order.
#[derive(Debug)]
pub struct Journal {
    cap: usize,
    inner: Mutex<JournalInner>,
}

impl Journal {
    /// A journal keeping at most `cap` entries (oldest evicted first).
    pub fn new(cap: usize) -> Journal {
        Journal {
            cap,
            inner: Mutex::new(JournalInner {
                next_seq: 1,
                ..JournalInner::default()
            }),
        }
    }

    /// Record one entry; `seq` and the current source scope are filled
    /// in here.
    pub fn record(
        &self,
        kind: JournalKind,
        device: DeviceId,
        epoch: u64,
        trace: u64,
        intent: Option<u64>,
        detail: String,
    ) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let source = inner.source.clone();
        if inner.ring.len() == self.cap {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(JournalEvent {
            seq,
            kind,
            device,
            epoch,
            trace,
            intent,
            detail,
            source,
        });
    }

    /// Set (or clear) the attribution scope stamped onto subsequent
    /// entries.
    pub fn set_source(&self, source: Option<String>) {
        self.inner.lock().unwrap().source = source;
    }

    /// Retained entries, oldest first (seq ascending).
    pub fn snapshot(&self) -> Vec<JournalEvent> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Entries evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Total entries ever recorded.
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap().next_seq - 1
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// Render a journal snapshot as the deterministic dump document:
/// `{"schema":"tulkun-journal-v1","dropped":n,"events":[...]}`.
pub fn journal_json(events: &[JournalEvent], dropped: u64) -> String {
    let doc = Json::Object(vec![
        ("schema".into(), Json::Str("tulkun-journal-v1".into())),
        ("dropped".into(), Json::Int(dropped as i64)),
        (
            "events".into(),
            Json::Array(events.iter().map(JournalEvent::to_json).collect()),
        ),
    ]);
    tulkun_json::to_string(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(i: u32) -> DeviceId {
        DeviceId(i)
    }

    #[test]
    fn seq_is_monotonic_and_ring_is_bounded() {
        let j = Journal::new(3);
        for i in 0..5u64 {
            j.record(
                JournalKind::FaultInjected,
                dev(i as u32),
                0,
                i,
                None,
                format!("e{i}"),
            );
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.recorded(), 5);
    }

    #[test]
    fn source_scope_is_stamped_and_cleared() {
        let j = Journal::new(8);
        j.record(JournalKind::EpochFence, dev(0), 1, 0, None, "pre".into());
        j.set_source(Some("cp".into()));
        j.record(
            JournalKind::IntentInstalled,
            dev(0),
            2,
            0,
            Some(1),
            "in-scope".into(),
        );
        j.set_source(None);
        j.record(JournalKind::EpochFence, dev(0), 3, 0, None, "post".into());
        let snap = j.snapshot();
        assert_eq!(snap[0].source, None);
        assert_eq!(snap[1].source.as_deref(), Some("cp"));
        assert_eq!(snap[2].source, None);
    }

    #[test]
    fn dump_is_deterministic_and_parses() {
        let run = || {
            let j = Journal::new(8);
            j.record(
                JournalKind::TopologyChurn,
                dev(2),
                1,
                5,
                None,
                "link-down d2-d3".into(),
            );
            j.record(
                JournalKind::IntentInstalled,
                dev(0),
                2,
                6,
                Some(3),
                "intent \"waypoint\"".into(),
            );
            journal_json(&j.snapshot(), j.dropped())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "equal runs must dump byte-equal journals");
        let doc = tulkun_json::parse(&a).expect("dump is valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("tulkun-journal-v1")
        );
        let events = doc.get("events").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("kind").and_then(Json::as_str),
            Some("topology_churn")
        );
        assert_eq!(events[1].get("intent"), Some(&Json::Int(3)));
        assert_eq!(events[0].get("intent"), None);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let j = Journal::new(0);
        j.record(JournalKind::EpochFence, dev(0), 1, 0, None, "x".into());
        assert!(j.snapshot().is_empty());
        assert_eq!(j.recorded(), 0);
    }
}
