//! Span tracer: fixed-capacity per-device ring buffers of
//! [`SpanEvent`]s behind [`crate::SHARDS`] lock shards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tulkun_netmodel::topology::DeviceId;

use crate::SHARDS;

/// One recorded span (or instantaneous event when `dur == 0`).
///
/// `begin` is a monotonic tick in nanoseconds — host-monotonic time
/// since the owning [`crate::Telemetry`] handle was created, one
/// coherent timeline across every device and thread of a run. The
/// substrate's own clock reading (virtual time under `DvmSim`) rides
/// along in `aux` where relevant, so traces can be re-keyed offline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Device the span belongs to (exported as the Chrome-trace tid).
    pub device: DeviceId,
    /// Static span name, e.g. `"dvm.update"` or `"lec.delta"`.
    pub name: &'static str,
    /// Static category, e.g. `"dvm"`, `"fault"`, `"init"`.
    pub cat: &'static str,
    /// Begin tick in nanoseconds (see type docs).
    pub begin: u64,
    /// Duration in nanoseconds; 0 marks an instantaneous event.
    pub dur: u64,
    /// Causal trace id threaded through `Envelope`; 0 = untraced.
    pub trace: u64,
    /// Auxiliary word: virtual-clock tick, worker index, or 0.
    pub aux: u64,
}

/// Fixed-capacity ring of spans for one device.
#[derive(Debug)]
struct Ring {
    events: Vec<SpanEvent>,
    cap: usize,
    /// Next overwrite position once full.
    head: usize,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            events: Vec::new(),
            cap,
            head: 0,
        }
    }

    /// Push, overwriting the oldest event when full. Returns whether
    /// an event was dropped.
    fn push(&mut self, ev: SpanEvent) -> bool {
        if self.events.len() < self.cap {
            self.events.push(ev);
            false
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            true
        }
    }

    /// Events in recording order (oldest first).
    fn ordered(&self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

/// Sharded span sink; see [`crate::Telemetry`] for the recording API.
#[derive(Debug)]
pub struct Tracer {
    shards: Vec<Mutex<BTreeMap<u32, Ring>>>,
    ring_capacity: usize,
    dropped: AtomicU64,
}

impl Tracer {
    /// A tracer whose per-device rings hold `ring_capacity` spans.
    pub fn new(ring_capacity: usize) -> Tracer {
        assert!(ring_capacity > 0, "ring capacity must be positive");
        Tracer {
            shards: (0..SHARDS).map(|_| Mutex::new(BTreeMap::new())).collect(),
            ring_capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Record one span into its device's ring.
    pub fn record(&self, ev: SpanEvent) {
        let shard = &self.shards[ev.device.idx() % SHARDS];
        let mut rings = shard.lock().unwrap();
        let ring = rings
            .entry(ev.device.0)
            .or_insert_with(|| Ring::new(self.ring_capacity));
        if ring.push(ev) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spans overwritten because a ring filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// All spans, merged and sorted by `(begin, device, name)` so
    /// equal recordings snapshot to equal vectors.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let rings = shard.lock().unwrap();
            for ring in rings.values() {
                out.extend(ring.ordered());
            }
        }
        out.sort_by(|a, b| {
            (a.begin, a.device.0, a.name, a.dur, a.trace)
                .cmp(&(b.begin, b.device.0, b.name, b.dur, b.trace))
        });
        out
    }
}
