//! Deterministic exporters: Chrome `trace_event` JSON (loadable in
//! `about:tracing` / Perfetto) and Prometheus text exposition.
//! Both iterate sorted snapshots, so equal recordings export to
//! byte-equal output.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use tulkun_json::Json;

use crate::{JournalEvent, MetricsSnapshot, SpanEvent};

fn micros(ns: u64) -> Json {
    // Chrome-trace timestamps are microseconds; keep sub-µs precision
    // as a fractional part. ns fits f64 exactly below 2^53.
    Json::Float(ns as f64 / 1000.0)
}

/// Render spans as a Chrome `trace_event` JSON document. Devices map
/// to threads (`tid` = device index) of one process (`pid` = 1);
/// completed spans use phase `"X"`, instantaneous events phase `"i"`;
/// the causal trace id and the auxiliary word ride in `args`.
pub fn chrome_trace_json(spans: &[SpanEvent]) -> String {
    chrome_trace_json_with_journal(spans, &[])
}

/// [`chrome_trace_json`] plus a journal lane: each flight-recorder
/// entry becomes an instant event (phase `"i"`, cat `"journal"`) on
/// its device's thread, timestamped by its deterministic `seq` so the
/// lane needs no wall clock. The entry's kind becomes the event name
/// and its epoch/detail ride in `args`.
pub fn chrome_trace_json_with_journal(spans: &[SpanEvent], journal: &[JournalEvent]) -> String {
    let mut events = Vec::new();
    let devices: BTreeSet<u32> = spans
        .iter()
        .map(|s| s.device.0)
        .chain(journal.iter().map(|e| e.device.0))
        .collect();
    for d in &devices {
        events.push(Json::Object(vec![
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::Int(1)),
            ("tid".into(), Json::Int(*d as i64)),
            ("name".into(), Json::Str("thread_name".into())),
            (
                "args".into(),
                Json::Object(vec![("name".into(), Json::Str(format!("dev{d}")))]),
            ),
        ]));
    }
    for s in spans {
        let mut ev = vec![
            ("name".into(), Json::Str(s.name.into())),
            ("cat".into(), Json::Str(s.cat.into())),
        ];
        if s.dur > 0 {
            ev.push(("ph".into(), Json::Str("X".into())));
            ev.push(("ts".into(), micros(s.begin)));
            ev.push(("dur".into(), micros(s.dur)));
        } else {
            ev.push(("ph".into(), Json::Str("i".into())));
            ev.push(("s".into(), Json::Str("t".into())));
            ev.push(("ts".into(), micros(s.begin)));
        }
        ev.push(("pid".into(), Json::Int(1)));
        ev.push(("tid".into(), Json::Int(s.device.0 as i64)));
        ev.push((
            "args".into(),
            Json::Object(vec![
                ("trace".into(), Json::Int(s.trace as i64)),
                ("aux".into(), Json::Int(s.aux as i64)),
            ]),
        ));
        events.push(Json::Object(ev));
    }
    for e in journal {
        let mut args = vec![
            ("trace".into(), Json::Int(e.trace as i64)),
            ("seq".into(), Json::Int(e.seq as i64)),
            ("epoch".into(), Json::Int(e.epoch as i64)),
        ];
        if let Some(id) = e.intent {
            args.push(("intent".into(), Json::Int(id as i64)));
        }
        args.push(("detail".into(), Json::Str(e.detail.clone())));
        events.push(Json::Object(vec![
            ("name".into(), Json::Str(e.kind.as_str().into())),
            ("cat".into(), Json::Str("journal".into())),
            ("ph".into(), Json::Str("i".into())),
            ("s".into(), Json::Str("t".into())),
            ("ts".into(), Json::Float(e.seq as f64)),
            ("pid".into(), Json::Int(1)),
            ("tid".into(), Json::Int(e.device.0 as i64)),
            ("args".into(), Json::Object(args)),
        ]));
    }
    let doc = Json::Object(vec![
        ("displayTimeUnit".into(), Json::Str("ns".into())),
        ("traceEvents".into(), Json::Array(events)),
    ]);
    tulkun_json::to_string(&doc)
}

/// Render a metrics snapshot in Prometheus text exposition format:
/// `# TYPE` comments, cumulative `_bucket{le="..."}` lines, `_sum`
/// and `_count` per histogram. Deterministic: sorted by metric name.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    let mut last_family = "";
    for ((name, label), v) in &snap.labeled_gauges {
        if name != last_family {
            let _ = writeln!(out, "# TYPE {name} gauge");
            last_family = name;
        }
        let _ = writeln!(out, "{name}{{{label}}} {v}");
    }
    for (name, h) in &snap.hists {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (bound, c) in h.bounds.iter().zip(&h.buckets) {
            cum += c;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
        }
        cum += h.buckets.last().copied().unwrap_or(0);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramSpec, MetricsRegistry, Telemetry};
    use tulkun_netmodel::topology::DeviceId;

    const TINY: HistogramSpec = HistogramSpec {
        name: "tiny_ns",
        bounds: &[10, 100],
    };

    #[test]
    fn chrome_trace_round_trips_and_links_devices() {
        let tel = Telemetry::enabled();
        tel.span(DeviceId(0), "fib.batch", "dvm", 100, 50, 7);
        tel.span(DeviceId(2), "dvm.update", "dvm", 200, 25, 7);
        tel.instant(DeviceId(2), "reliable.retransmit", "reliable", 300, 7);
        let text = tel.chrome_trace_json();
        let doc = tulkun_json::parse(&text).expect("exporter emits valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 2 thread_name metadata + 3 events.
        assert_eq!(events.len(), 5);
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
            .collect();
        let tids: BTreeSet<i64> = spans
            .iter()
            .filter_map(|e| match e.get("tid") {
                Some(Json::Int(i)) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(tids.len(), 2, "spans from two devices");
        for s in &spans {
            let trace = s.get("args").and_then(|a| a.get("trace"));
            assert_eq!(trace, Some(&Json::Int(7)), "one causal trace id");
        }
    }

    #[test]
    fn prometheus_text_is_cumulative_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.count(DeviceId(0), "b_total", 2);
        reg.count(DeviceId(0), "a_total", 1);
        reg.observe(DeviceId(0), &TINY, 5);
        reg.observe(DeviceId(0), &TINY, 50);
        reg.observe(DeviceId(0), &TINY, 5000);
        let text = prometheus_text(&reg.snapshot());
        let expected = "\
# TYPE a_total counter
a_total 1
# TYPE b_total counter
b_total 2
# TYPE tiny_ns histogram
tiny_ns_bucket{le=\"10\"} 1
tiny_ns_bucket{le=\"100\"} 2
tiny_ns_bucket{le=\"+Inf\"} 3
tiny_ns_sum 5055
tiny_ns_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn empty_snapshot_exports_empty_documents() {
        let tel = Telemetry::disabled();
        assert_eq!(tel.prometheus_text(), "");
        let doc = tulkun_json::parse(&tel.chrome_trace_json()).unwrap();
        assert_eq!(
            doc.get("traceEvents")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(0)
        );
    }
}
