//! Devices, links and the external-port prefix mapping.

use crate::prefix::IpPrefix;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use tulkun_json::{FromJson, Json, JsonError, ToJson};

/// A network device (switch/router), identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Index as usize, for direct indexing into per-device vectors.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An undirected link between two devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub u32);

/// Link record: endpoints and propagation latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// One endpoint.
    pub a: DeviceId,
    /// The other endpoint.
    pub b: DeviceId,
    /// One-way propagation latency in nanoseconds.
    pub latency_ns: u64,
}

impl Link {
    /// The endpoint opposite `d` (panics if `d` is not an endpoint).
    pub fn other(&self, d: DeviceId) -> DeviceId {
        if self.a == d {
            self.b
        } else {
            assert_eq!(self.b, d, "device not on link");
            self.a
        }
    }
}

/// The network topology: devices, named; links with latencies; and the
/// `(device, IP prefix)` mapping for external ports (§3).
#[derive(Debug, Clone, Default)]
pub struct Topology {
    names: Vec<String>,
    by_name: HashMap<String, DeviceId>,
    links: Vec<Link>,
    adj: Vec<Vec<(DeviceId, LinkId)>>,
    /// Ordered so `external_map()` iterates deterministically — callers
    /// pick "the first destination" and must get the same one each run.
    external: BTreeMap<DeviceId, Vec<IpPrefix>>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a device; returns its id. Panics on duplicate names.
    pub fn add_device(&mut self, name: impl Into<String>) -> DeviceId {
        let name = name.into();
        assert!(!self.by_name.contains_key(&name), "duplicate device {name}");
        let id = DeviceId(self.names.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.adj.push(Vec::new());
        id
    }

    /// Adds an undirected link with the given propagation latency.
    pub fn add_link(&mut self, a: DeviceId, b: DeviceId, latency_ns: u64) -> LinkId {
        assert_ne!(a, b, "self links not allowed");
        assert!(
            self.link_between(a, b).is_none(),
            "duplicate link {} - {}",
            self.name(a),
            self.name(b)
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { a, b, latency_ns });
        self.adj[a.idx()].push((b, id));
        self.adj[b.idx()].push((a, id));
        id
    }

    /// Declares that `prefix` is reachable via an external port of `dev`.
    pub fn add_external_prefix(&mut self, dev: DeviceId, prefix: IpPrefix) {
        self.external.entry(dev).or_default().push(prefix);
    }

    /// Device count.
    pub fn num_devices(&self) -> usize {
        self.names.len()
    }

    /// Link count.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All device ids.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.names.len() as u32).map(DeviceId)
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Link record by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Device name.
    pub fn name(&self, d: DeviceId) -> &str {
        &self.names[d.idx()]
    }

    /// Device id by name.
    pub fn device(&self, name: &str) -> Option<DeviceId> {
        self.by_name.get(name).copied()
    }

    /// Device id by name, panicking with a useful message if absent.
    pub fn expect_device(&self, name: &str) -> DeviceId {
        self.device(name)
            .unwrap_or_else(|| panic!("no device named {name:?} in topology"))
    }

    /// Neighbors of a device with the connecting link.
    pub fn neighbors(&self, d: DeviceId) -> &[(DeviceId, LinkId)] {
        &self.adj[d.idx()]
    }

    /// The link between two devices, if any.
    pub fn link_between(&self, a: DeviceId, b: DeviceId) -> Option<LinkId> {
        self.adj[a.idx()]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, l)| *l)
    }

    /// External prefixes announced at a device.
    pub fn external_prefixes(&self, d: DeviceId) -> &[IpPrefix] {
        self.external.get(&d).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All `(device, prefix)` external-port pairs.
    pub fn external_map(&self) -> impl Iterator<Item = (DeviceId, IpPrefix)> + '_ {
        self.external
            .iter()
            .flat_map(|(d, ps)| ps.iter().map(move |p| (*d, *p)))
    }

    /// Devices that announce a prefix covering `prefix`.
    pub fn devices_covering(&self, prefix: &IpPrefix) -> Vec<DeviceId> {
        let mut out: Vec<DeviceId> = self
            .external
            .iter()
            .filter(|(_, ps)| ps.iter().any(|p| p.overlaps(prefix)))
            .map(|(d, _)| *d)
            .collect();
        out.sort();
        out
    }

    /// Hop distances from `src` by BFS, ignoring links in `down`.
    /// Unreachable devices get `u32::MAX`.
    pub fn bfs_hops(&self, src: DeviceId, down: &[LinkId]) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_devices()];
        let mut queue = std::collections::VecDeque::new();
        dist[src.idx()] = 0;
        queue.push_back(src);
        while let Some(d) = queue.pop_front() {
            for &(n, l) in &self.adj[d.idx()] {
                if down.contains(&l) || dist[n.idx()] != u32::MAX {
                    continue;
                }
                dist[n.idx()] = dist[d.idx()] + 1;
                queue.push_back(n);
            }
        }
        dist
    }

    /// Latency distances (ns) from `src` by Dijkstra over link latencies,
    /// ignoring links in `down`.
    pub fn dijkstra_latency(&self, src: DeviceId, down: &[LinkId]) -> Vec<u64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist = vec![u64::MAX; self.num_devices()];
        let mut heap = BinaryHeap::new();
        dist[src.idx()] = 0;
        heap.push(Reverse((0u64, src)));
        while let Some(Reverse((cost, d))) = heap.pop() {
            if cost > dist[d.idx()] {
                continue;
            }
            for &(n, l) in &self.adj[d.idx()] {
                if down.contains(&l) {
                    continue;
                }
                let next = cost + self.link(l).latency_ns;
                if next < dist[n.idx()] {
                    dist[n.idx()] = next;
                    heap.push(Reverse((next, n)));
                }
            }
        }
        dist
    }

    /// Network diameter in hops (max finite BFS distance over all pairs).
    pub fn diameter_hops(&self) -> u32 {
        self.devices()
            .map(|d| {
                self.bfs_hops(d, &[])
                    .into_iter()
                    .filter(|&h| h != u32::MAX)
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Is the graph connected when the given links are removed?
    pub fn connected_without(&self, down: &[LinkId]) -> bool {
        if self.num_devices() == 0 {
            return true;
        }
        let dist = self.bfs_hops(DeviceId(0), down);
        dist.iter().all(|&d| d != u32::MAX)
    }
}

impl ToJson for DeviceId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for DeviceId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(DeviceId)
    }
}

impl ToJson for LinkId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for LinkId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(LinkId)
    }
}

tulkun_json::impl_json_object!(Link { a, b, latency_ns });

impl ToJson for Topology {
    fn to_json(&self) -> Json {
        // The by-name index and adjacency lists are derived state and
        // rebuilt on load; external ports iterate sorted by device, so
        // the serialized output is deterministic.
        let external: Vec<(DeviceId, Vec<IpPrefix>)> = self
            .external
            .iter()
            .map(|(d, ps)| (*d, ps.clone()))
            .collect();
        Json::Object(vec![
            ("names".to_string(), self.names.to_json()),
            ("links".to_string(), self.links.to_json()),
            ("external".to_string(), external.to_json()),
        ])
    }
}

impl FromJson for Topology {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| v.get(name).ok_or_else(|| JsonError::missing_field(name));
        let names: Vec<String> = FromJson::from_json(field("names")?)?;
        let links: Vec<Link> = FromJson::from_json(field("links")?)?;
        let external: Vec<(DeviceId, Vec<IpPrefix>)> = FromJson::from_json(field("external")?)?;
        let mut t = Topology::new();
        for name in names {
            t.add_device(name);
        }
        for l in &links {
            if l.a.idx() >= t.num_devices() || l.b.idx() >= t.num_devices() {
                return Err(JsonError::new("link endpoint out of range"));
            }
            t.add_link(l.a, l.b, l.latency_ns);
        }
        for (d, ps) in external {
            if d.idx() >= t.num_devices() {
                return Err(JsonError::new("external device out of range"));
            }
            for p in ps {
                t.add_external_prefix(d, p);
            }
        }
        Ok(t)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology({} devices, {} links, {} external prefixes)",
            self.num_devices(),
            self.num_links(),
            self.external.values().map(Vec::len).sum::<usize>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Topology, [DeviceId; 4]) {
        // s - a - d and s - b - d
        let mut t = Topology::new();
        let s = t.add_device("S");
        let a = t.add_device("A");
        let b = t.add_device("B");
        let d = t.add_device("D");
        t.add_link(s, a, 10);
        t.add_link(s, b, 10);
        t.add_link(a, d, 10);
        t.add_link(b, d, 30);
        (t, [s, a, b, d])
    }

    #[test]
    fn names_and_lookup() {
        let (t, [s, ..]) = diamond();
        assert_eq!(t.name(s), "S");
        assert_eq!(t.device("S"), Some(s));
        assert_eq!(t.device("Z"), None);
        assert_eq!(t.num_devices(), 4);
        assert_eq!(t.num_links(), 4);
    }

    #[test]
    fn neighbors_and_links() {
        let (t, [s, a, b, d]) = diamond();
        let ns: Vec<DeviceId> = t.neighbors(s).iter().map(|(n, _)| *n).collect();
        assert_eq!(ns, vec![a, b]);
        assert!(t.link_between(s, a).is_some());
        assert!(t.link_between(s, d).is_none());
        let l = t.link_between(a, d).unwrap();
        assert_eq!(t.link(l).other(a), d);
    }

    #[test]
    fn bfs_and_dijkstra_disagree_when_latencies_do() {
        let (t, [s, _, _, d]) = diamond();
        let hops = t.bfs_hops(s, &[]);
        assert_eq!(hops[d.idx()], 2);
        let lat = t.dijkstra_latency(s, &[]);
        assert_eq!(lat[d.idx()], 20); // via a, not the 40ns path via b
    }

    #[test]
    fn bfs_respects_down_links() {
        let (t, [s, a, _, d]) = diamond();
        let l = t.link_between(a, d).unwrap();
        let hops = t.bfs_hops(s, &[l]);
        assert_eq!(hops[d.idx()], 2); // still reachable via b
        let l2 = t.link_between(s, a).unwrap();
        let l3 = t.link_between(s, t.device("B").unwrap()).unwrap();
        let hops = t.bfs_hops(s, &[l2, l3]);
        assert_eq!(hops[d.idx()], u32::MAX);
        assert!(!t.connected_without(&[l2, l3]));
        assert!(t.connected_without(&[l]));
    }

    #[test]
    fn external_prefix_mapping() {
        let (mut t, [_, _, _, d]) = diamond();
        let p: IpPrefix = "10.0.0.0/23".parse().unwrap();
        t.add_external_prefix(d, p);
        assert_eq!(t.external_prefixes(d), &[p]);
        let q: IpPrefix = "10.0.1.0/24".parse().unwrap();
        assert_eq!(t.devices_covering(&q), vec![d]);
        let r: IpPrefix = "10.9.0.0/16".parse().unwrap();
        assert!(t.devices_covering(&r).is_empty());
    }

    #[test]
    fn diameter() {
        let (t, _) = diamond();
        assert_eq!(t.diameter_hops(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate device")]
    fn duplicate_device_panics() {
        let mut t = Topology::new();
        t.add_device("X");
        t.add_device("X");
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_panics() {
        let mut t = Topology::new();
        let a = t.add_device("A");
        let b = t.add_device("B");
        t.add_link(a, b, 1);
        t.add_link(b, a, 1);
    }
}
