//! IPv4 prefixes.

use std::fmt;
use std::str::FromStr;
use tulkun_bdd::{BddManager, HeaderLayout, Pred};

/// An IPv4 prefix `addr/len` with host bits zeroed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpPrefix {
    /// Network address with host bits zero.
    pub addr: u32,
    /// Prefix length, 0..=32.
    pub len: u8,
}

impl IpPrefix {
    /// Builds a prefix, zeroing any host bits of `addr`.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range");
        IpPrefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// Builds a prefix from dotted octets.
    pub fn from_octets(octets: [u8; 4], len: u8) -> Self {
        Self::new(u32::from_be_bytes(octets), len)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Does this prefix contain the address?
    pub fn contains(&self, addr: u32) -> bool {
        addr & Self::mask(self.len) == self.addr
    }

    /// Does this prefix contain (or equal) the other prefix?
    pub fn covers(&self, other: &IpPrefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// Do the two prefixes share any address?
    pub fn overlaps(&self, other: &IpPrefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The two halves of this prefix (undefined for /32).
    pub fn split(&self) -> (IpPrefix, IpPrefix) {
        assert!(self.len < 32, "cannot split a /32");
        let len = self.len + 1;
        let lo = IpPrefix::new(self.addr, len);
        let hi = IpPrefix::new(self.addr | (1 << (32 - len as u32)), len);
        (lo, hi)
    }

    /// Compiles the prefix into a destination-IP predicate.
    pub fn to_pred(&self, m: &mut BddManager, layout: &HeaderLayout) -> Pred {
        layout.dst_ip.prefix(m, self.addr as u64, self.len as u32)
    }
}

impl tulkun_json::ToJson for IpPrefix {
    fn to_json(&self) -> tulkun_json::Json {
        tulkun_json::Json::Str(self.to_string())
    }
}

impl tulkun_json::FromJson for IpPrefix {
    fn from_json(v: &tulkun_json::Json) -> Result<Self, tulkun_json::JsonError> {
        let s = v
            .as_str()
            .ok_or_else(|| tulkun_json::JsonError::expected("prefix string", v))?;
        s.parse()
            .map_err(|e: ParsePrefixError| tulkun_json::JsonError::new(e.to_string()))
    }
}

impl fmt::Display for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.addr.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", o[0], o[1], o[2], o[3], self.len)
    }
}

/// Error from parsing an [`IpPrefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError(pub String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for IpPrefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePrefixError(s.to_string());
        let (ip, len) = match s.split_once('/') {
            Some((ip, len)) => (ip, len.parse::<u8>().map_err(|_| err())?),
            None => (s, 32),
        };
        if len > 32 {
            return Err(err());
        }
        let mut octets = [0u8; 4];
        let mut parts = ip.split('.');
        for o in octets.iter_mut() {
            *o = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(IpPrefix::from_octets(octets, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["10.0.0.0/23", "192.168.1.0/24", "0.0.0.0/0", "1.2.3.4/32"] {
            let p: IpPrefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_host_without_len() {
        let p: IpPrefix = "1.2.3.4".parse().unwrap();
        assert_eq!(p.len, 32);
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "10.0.0/24",
            "10.0.0.0.0/24",
            "10.0.0.0/33",
            "a.b.c.d/8",
            "10.0.0.256/8",
        ] {
            assert!(s.parse::<IpPrefix>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn host_bits_are_zeroed() {
        let p = IpPrefix::from_octets([10, 0, 1, 77], 24);
        assert_eq!(p.to_string(), "10.0.1.0/24");
    }

    #[test]
    fn containment() {
        let p23: IpPrefix = "10.0.0.0/23".parse().unwrap();
        let p24: IpPrefix = "10.0.1.0/24".parse().unwrap();
        assert!(p23.covers(&p24));
        assert!(!p24.covers(&p23));
        assert!(p23.overlaps(&p24));
        assert!(p23.contains(u32::from_be_bytes([10, 0, 1, 9])));
        assert!(!p23.contains(u32::from_be_bytes([10, 0, 2, 0])));
        let other: IpPrefix = "10.1.0.0/16".parse().unwrap();
        assert!(!p23.overlaps(&other));
    }

    #[test]
    fn split_partitions() {
        let p: IpPrefix = "10.0.0.0/23".parse().unwrap();
        let (lo, hi) = p.split();
        assert_eq!(lo.to_string(), "10.0.0.0/24");
        assert_eq!(hi.to_string(), "10.0.1.0/24");
        assert!(p.covers(&lo) && p.covers(&hi));
        assert!(!lo.overlaps(&hi));
    }

    #[test]
    fn pred_agrees_with_contains() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut m = BddManager::new(layout.num_vars());
        let p: IpPrefix = "172.16.0.0/12".parse().unwrap();
        let pred = p.to_pred(&mut m, &layout);
        for addr in [
            u32::from_be_bytes([172, 16, 0, 1]),
            u32::from_be_bytes([172, 31, 255, 255]),
            u32::from_be_bytes([172, 32, 0, 0]),
            u32::from_be_bytes([10, 0, 0, 1]),
        ] {
            let mut bits = vec![false; layout.num_vars() as usize];
            for i in 0..32 {
                bits[i as usize] = (addr >> (31 - i)) & 1 == 1;
            }
            assert_eq!(m.eval(pred, &bits), p.contains(addr), "addr {addr:#x}");
        }
    }
}
