#![warn(missing_docs)]
//! Network substrate for Tulkun: topologies, data planes and routing.
//!
//! This crate models everything the verifier observes about a network:
//!
//! * [`topology`] — devices, links (with propagation latency), and the
//!   `(device, IP prefix)` external-port mapping of §3's convenience
//!   features.
//! * [`prefix`] — IPv4 prefixes and parsing.
//! * [`fib`] — prioritized match-action tables (the paper's data plane
//!   model of §2.1) with `ALL`/`ANY` forwarding groups, drops, external
//!   delivery and header-rewriting actions, plus the **LEC builder** that
//!   compresses a FIB into local equivalence classes (§5.1/§8).
//! * [`routing`] — shortest-path/ECMP FIB generation and error injection,
//!   used to synthesize data planes for the evaluation datasets.
//! * [`network`] — a topology plus one FIB per device.

pub mod fib;
pub mod network;
pub mod prefix;
pub mod routing;
pub mod topology;

pub use fib::{Action, ActionType, Fib, MatchSpec, NextHop, Rule};
pub use network::{Network, RuleUpdate, UpdateBatch};
pub use prefix::IpPrefix;
pub use topology::{DeviceId, LinkId, Topology};
