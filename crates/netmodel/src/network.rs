//! A network: topology plus one data plane (FIB) per device.

use crate::fib::{Fib, MatchSpec, Rule};
use crate::topology::{DeviceId, Topology};
use tulkun_bdd::HeaderLayout;

/// A complete network snapshot: topology, per-device FIBs, and the header
/// layout its predicates are expressed over.
#[derive(Debug, Clone)]
pub struct Network {
    /// Devices, links and external ports.
    pub topology: Topology,
    /// One FIB per device, indexed by `DeviceId`.
    pub fibs: Vec<Fib>,
    /// Header-bit layout of all predicates.
    pub layout: HeaderLayout,
}

/// One rule update: install or withdraw a rule at a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleUpdate {
    /// Install a rule.
    Insert {
        /// Device whose FIB changes.
        device: DeviceId,
        /// The new rule.
        rule: Rule,
    },
    /// Withdraw all rules with this priority and match.
    Remove {
        /// Device whose FIB changes.
        device: DeviceId,
        /// Priority of the rules to remove.
        priority: u32,
        /// Match of the rules to remove.
        matches: MatchSpec,
    },
}

impl RuleUpdate {
    /// The device whose FIB the update touches.
    pub fn device(&self) -> DeviceId {
        match self {
            RuleUpdate::Insert { device, .. } | RuleUpdate::Remove { device, .. } => *device,
        }
    }
}

impl Network {
    /// A network over the given topology with empty (drop-all) FIBs.
    pub fn new(topology: Topology) -> Self {
        let n = topology.num_devices();
        Network {
            topology,
            fibs: vec![Fib::new(); n],
            layout: HeaderLayout::ipv4_tcp(),
        }
    }

    /// The FIB of a device.
    pub fn fib(&self, d: DeviceId) -> &Fib {
        &self.fibs[d.idx()]
    }

    /// Mutable FIB of a device.
    pub fn fib_mut(&mut self, d: DeviceId) -> &mut Fib {
        &mut self.fibs[d.idx()]
    }

    /// Total rules across all devices.
    pub fn total_rules(&self) -> usize {
        self.fibs.iter().map(Fib::len).sum()
    }

    /// Applies a rule update to the snapshot.
    pub fn apply(&mut self, update: &RuleUpdate) {
        match update {
            RuleUpdate::Insert { device, rule } => self.fib_mut(*device).insert(rule.clone()),
            RuleUpdate::Remove {
                device,
                priority,
                matches,
            } => {
                self.fib_mut(*device).remove(*priority, matches);
            }
        }
    }
}

tulkun_json::impl_json_object!(Network {
    topology,
    fibs,
    layout
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::Action;
    use crate::prefix::IpPrefix;

    #[test]
    fn apply_updates() {
        let mut t = Topology::new();
        let a = t.add_device("A");
        let _b = t.add_device("B");
        let mut net = Network::new(t);
        assert_eq!(net.total_rules(), 0);
        let p: IpPrefix = "10.0.0.0/24".parse().unwrap();
        let rule = Rule {
            priority: 10,
            matches: MatchSpec::dst(p),
            action: Action::deliver(),
        };
        net.apply(&RuleUpdate::Insert {
            device: a,
            rule: rule.clone(),
        });
        assert_eq!(net.total_rules(), 1);
        assert_eq!(net.fib(a).rules()[0], rule);
        net.apply(&RuleUpdate::Remove {
            device: a,
            priority: 10,
            matches: MatchSpec::dst(p),
        });
        assert_eq!(net.total_rules(), 0);
    }
}
