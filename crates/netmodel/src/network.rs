//! A network: topology plus one data plane (FIB) per device.

use crate::fib::{Fib, MatchSpec, Rule};
use crate::topology::{DeviceId, Topology};
use tulkun_bdd::HeaderLayout;

/// A complete network snapshot: topology, per-device FIBs, and the header
/// layout its predicates are expressed over.
#[derive(Debug, Clone)]
pub struct Network {
    /// Devices, links and external ports.
    pub topology: Topology,
    /// One FIB per device, indexed by `DeviceId`.
    pub fibs: Vec<Fib>,
    /// Header-bit layout of all predicates.
    pub layout: HeaderLayout,
}

/// One rule update: install or withdraw a rule at a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleUpdate {
    /// Install a rule.
    Insert {
        /// Device whose FIB changes.
        device: DeviceId,
        /// The new rule.
        rule: Rule,
    },
    /// Withdraw all rules with this priority and match.
    Remove {
        /// Device whose FIB changes.
        device: DeviceId,
        /// Priority of the rules to remove.
        priority: u32,
        /// Match of the rules to remove.
        matches: MatchSpec,
    },
}

impl RuleUpdate {
    /// The device whose FIB the update touches.
    pub fn device(&self) -> DeviceId {
        match self {
            RuleUpdate::Insert { device, .. } | RuleUpdate::Remove { device, .. } => *device,
        }
    }
}

/// An ordered burst of rule updates, applied as one unit.
///
/// A batch preserves the relative order of updates per device and
/// coalesces churn before verification: a rule inserted and then
/// withdrawn inside the same batch never reaches the verifier. The
/// coalesced form keeps the `Remove` (a withdraw also clears any
/// pre-existing rules with the same priority and match), so applying
/// the coalesced batch leaves the FIB byte-identical to applying the
/// original sequence one update at a time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    updates: Vec<RuleUpdate>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Appends one update to the batch.
    pub fn push(&mut self, update: RuleUpdate) {
        self.updates.push(update);
    }

    /// Number of updates in the batch (before coalescing).
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True if the batch holds no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The raw updates, in arrival order.
    pub fn updates(&self) -> &[RuleUpdate] {
        &self.updates
    }

    /// Distinct devices the batch touches, in first-touch order.
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut seen = Vec::new();
        for u in &self.updates {
            let d = u.device();
            if !seen.contains(&d) {
                seen.push(d);
            }
        }
        seen
    }

    /// Groups the batch per device (first-touch order) and cancels
    /// insert-then-remove churn: an `Insert` followed later in the
    /// batch by a `Remove` with the same priority and match is dropped;
    /// the `Remove` stays, because `Fib::remove` also clears rules that
    /// predate the batch.
    pub fn coalesced(&self) -> Vec<(DeviceId, Vec<RuleUpdate>)> {
        let mut groups: Vec<(DeviceId, Vec<RuleUpdate>)> = Vec::new();
        for u in &self.updates {
            let dev = u.device();
            let group = match groups.iter_mut().find(|(d, _)| *d == dev) {
                Some((_, g)) => g,
                None => {
                    groups.push((dev, Vec::new()));
                    &mut groups.last_mut().unwrap().1
                }
            };
            if let RuleUpdate::Remove {
                priority, matches, ..
            } = u
            {
                group.retain(|kept| {
                    !matches!(kept, RuleUpdate::Insert { rule, .. }
                        if rule.priority == *priority && rule.matches == *matches)
                });
            }
            group.push(u.clone());
        }
        groups
    }
}

impl From<Vec<RuleUpdate>> for UpdateBatch {
    fn from(updates: Vec<RuleUpdate>) -> Self {
        UpdateBatch { updates }
    }
}

impl FromIterator<RuleUpdate> for UpdateBatch {
    fn from_iter<I: IntoIterator<Item = RuleUpdate>>(iter: I) -> Self {
        UpdateBatch {
            updates: iter.into_iter().collect(),
        }
    }
}

impl Extend<RuleUpdate> for UpdateBatch {
    fn extend<I: IntoIterator<Item = RuleUpdate>>(&mut self, iter: I) {
        self.updates.extend(iter);
    }
}

impl Network {
    /// A network over the given topology with empty (drop-all) FIBs.
    pub fn new(topology: Topology) -> Self {
        let n = topology.num_devices();
        Network {
            topology,
            fibs: vec![Fib::new(); n],
            layout: HeaderLayout::ipv4_tcp(),
        }
    }

    /// The FIB of a device.
    pub fn fib(&self, d: DeviceId) -> &Fib {
        &self.fibs[d.idx()]
    }

    /// Mutable FIB of a device.
    pub fn fib_mut(&mut self, d: DeviceId) -> &mut Fib {
        &mut self.fibs[d.idx()]
    }

    /// Total rules across all devices.
    pub fn total_rules(&self) -> usize {
        self.fibs.iter().map(Fib::len).sum()
    }

    /// Applies a rule update to the snapshot.
    pub fn apply(&mut self, update: &RuleUpdate) {
        match update {
            RuleUpdate::Insert { device, rule } => self.fib_mut(*device).insert(rule.clone()),
            RuleUpdate::Remove {
                device,
                priority,
                matches,
            } => {
                self.fib_mut(*device).remove(*priority, matches);
            }
        }
    }

    /// Applies every update of a batch, in order.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) {
        for u in batch.updates() {
            self.apply(u);
        }
    }
}

tulkun_json::impl_json_object!(Network {
    topology,
    fibs,
    layout
});

impl tulkun_json::ToJson for RuleUpdate {
    fn to_json(&self) -> tulkun_json::Json {
        use tulkun_json::Json;
        match self {
            RuleUpdate::Insert { device, rule } => Json::Object(vec![(
                "Insert".to_string(),
                Json::Object(vec![
                    ("device".to_string(), device.to_json()),
                    ("rule".to_string(), rule.to_json()),
                ]),
            )]),
            RuleUpdate::Remove {
                device,
                priority,
                matches,
            } => Json::Object(vec![(
                "Remove".to_string(),
                Json::Object(vec![
                    ("device".to_string(), device.to_json()),
                    ("priority".to_string(), priority.to_json()),
                    ("matches".to_string(), matches.to_json()),
                ]),
            )]),
        }
    }
}

impl tulkun_json::FromJson for RuleUpdate {
    fn from_json(v: &tulkun_json::Json) -> Result<Self, tulkun_json::JsonError> {
        use tulkun_json::{FromJson, JsonError};
        let field = |obj: &tulkun_json::Json, name: &str| {
            obj.get(name)
                .ok_or_else(|| JsonError::missing_field(name))
                .cloned()
        };
        if let Some(ins) = v.get("Insert") {
            return Ok(RuleUpdate::Insert {
                device: FromJson::from_json(&field(ins, "device")?)?,
                rule: FromJson::from_json(&field(ins, "rule")?)?,
            });
        }
        if let Some(rem) = v.get("Remove") {
            return Ok(RuleUpdate::Remove {
                device: FromJson::from_json(&field(rem, "device")?)?,
                priority: FromJson::from_json(&field(rem, "priority")?)?,
                matches: FromJson::from_json(&field(rem, "matches")?)?,
            });
        }
        Err(JsonError::expected("rule update", v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::Action;
    use crate::prefix::IpPrefix;

    #[test]
    fn rule_update_json_roundtrip() {
        let p: IpPrefix = "10.1.0.0/16".parse().unwrap();
        let ups = vec![
            RuleUpdate::Insert {
                device: DeviceId(3),
                rule: Rule {
                    priority: 7,
                    matches: MatchSpec::dst(p),
                    action: Action::deliver(),
                },
            },
            RuleUpdate::Remove {
                device: DeviceId(1),
                priority: 7,
                matches: MatchSpec::dst(p),
            },
        ];
        let text = tulkun_json::to_string(&ups);
        let parsed: Vec<RuleUpdate> = tulkun_json::from_str(&text).expect("rule updates roundtrip");
        assert_eq!(parsed, ups);
        assert!(tulkun_json::from_str::<RuleUpdate>("{\"Bogus\":{}}").is_err());
    }

    #[test]
    fn apply_updates() {
        let mut t = Topology::new();
        let a = t.add_device("A");
        let _b = t.add_device("B");
        let mut net = Network::new(t);
        assert_eq!(net.total_rules(), 0);
        let p: IpPrefix = "10.0.0.0/24".parse().unwrap();
        let rule = Rule {
            priority: 10,
            matches: MatchSpec::dst(p),
            action: Action::deliver(),
        };
        net.apply(&RuleUpdate::Insert {
            device: a,
            rule: rule.clone(),
        });
        assert_eq!(net.total_rules(), 1);
        assert_eq!(net.fib(a).rules()[0], rule);
        net.apply(&RuleUpdate::Remove {
            device: a,
            priority: 10,
            matches: MatchSpec::dst(p),
        });
        assert_eq!(net.total_rules(), 0);
    }

    fn insert(device: DeviceId, priority: u32, prefix: &str) -> RuleUpdate {
        RuleUpdate::Insert {
            device,
            rule: Rule {
                priority,
                matches: MatchSpec::dst(prefix.parse().unwrap()),
                action: Action::deliver(),
            },
        }
    }

    fn remove(device: DeviceId, priority: u32, prefix: &str) -> RuleUpdate {
        RuleUpdate::Remove {
            device,
            priority,
            matches: MatchSpec::dst(prefix.parse().unwrap()),
        }
    }

    #[test]
    fn batch_coalesces_insert_then_remove() {
        let mut t = Topology::new();
        let a = t.add_device("A");
        let b = t.add_device("B");
        let batch: UpdateBatch = vec![
            insert(a, 10, "10.0.0.0/24"),
            insert(b, 20, "10.0.1.0/24"),
            remove(a, 10, "10.0.0.0/24"),
            insert(a, 30, "10.0.2.0/24"),
        ]
        .into_iter()
        .collect();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.devices(), vec![a, b]);
        let groups = batch.coalesced();
        assert_eq!(groups.len(), 2);
        // Device A: the insert cancelled against the later remove; the
        // remove survives (it may clear pre-batch rules) and so does the
        // unrelated insert, in order.
        let (dev, ops) = &groups[0];
        assert_eq!(*dev, a);
        assert_eq!(
            ops,
            &vec![remove(a, 10, "10.0.0.0/24"), insert(a, 30, "10.0.2.0/24")]
        );
        let (dev, ops) = &groups[1];
        assert_eq!(*dev, b);
        assert_eq!(ops, &vec![insert(b, 20, "10.0.1.0/24")]);
    }

    #[test]
    fn coalesced_batch_yields_same_fib_as_sequential() {
        let mut t = Topology::new();
        let a = t.add_device("A");
        let mut seq = Network::new(t.clone());
        let mut coal = Network::new(t);
        // Pre-existing rule with the same key as the churned insert:
        // the surviving Remove must clear it on both paths.
        let pre = insert(a, 10, "10.0.0.0/24");
        seq.apply(&pre);
        coal.apply(&pre);
        let batch: UpdateBatch = vec![
            insert(a, 10, "10.0.0.0/24"),
            remove(a, 10, "10.0.0.0/24"),
            insert(a, 10, "10.0.0.0/24"),
        ]
        .into_iter()
        .collect();
        for u in batch.updates() {
            seq.apply(u);
        }
        for (_, ops) in batch.coalesced() {
            for u in &ops {
                coal.apply(u);
            }
        }
        assert_eq!(seq.fib(a).rules(), coal.fib(a).rules());
    }
}
