//! Prioritized match-action tables (the paper's data plane model, §2.1)
//! and the LEC builder (§5.1).

use crate::prefix::IpPrefix;
use crate::topology::DeviceId;
use tulkun_bdd::{BddManager, HeaderLayout, Pred};
use tulkun_json::{FromJson, Json, JsonError, ToJson};

/// How a forwarding group treats its next hops (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ActionType {
    /// The packet is replicated to **all** next hops in the group
    /// (multicast / 1+1 protection): one universe, several traces.
    All,
    /// The packet is sent to **one** next hop chosen by an unknown,
    /// vendor-specific algorithm (ECMP): several universes.
    Any,
}

/// A member of a forwarding group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NextHop {
    /// Forward to a neighboring device.
    Device(DeviceId),
    /// Deliver out an external port (the packet leaves the network
    /// correctly at this device).
    External,
}

/// An optional header rewrite applied before forwarding (packet
/// transformation, §5.2). The destination IP is replaced so that the
/// packet subsequently matches `to` instead of its original space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rewrite {
    /// New destination prefix; all matched packets are mapped into it.
    pub to: IpPrefix,
}

/// A data plane action.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Action {
    /// Drop the packet (the empty forwarding group of §2.1).
    Drop,
    /// Forward to a group of next hops.
    Forward {
        /// `ALL` (replicate) or `ANY` (pick one).
        mode: ActionType,
        /// The forwarding group.
        next_hops: Vec<NextHop>,
        /// Optional packet transformation applied before forwarding.
        rewrite: Option<Rewrite>,
    },
}

impl Action {
    /// Convenience: forward to a single device (ALL and ANY coincide).
    pub fn fwd(dev: DeviceId) -> Action {
        Action::Forward {
            mode: ActionType::All,
            next_hops: vec![NextHop::Device(dev)],
            rewrite: None,
        }
    }

    /// Convenience: forward to all of the given devices.
    pub fn fwd_all(devs: impl IntoIterator<Item = DeviceId>) -> Action {
        Action::Forward {
            mode: ActionType::All,
            next_hops: devs.into_iter().map(NextHop::Device).collect(),
            rewrite: None,
        }
    }

    /// Convenience: forward to any one of the given devices.
    pub fn fwd_any(devs: impl IntoIterator<Item = DeviceId>) -> Action {
        Action::Forward {
            mode: ActionType::Any,
            next_hops: devs.into_iter().map(NextHop::Device).collect(),
            rewrite: None,
        }
    }

    /// Convenience: deliver out an external port.
    pub fn deliver() -> Action {
        Action::Forward {
            mode: ActionType::All,
            next_hops: vec![NextHop::External],
            rewrite: None,
        }
    }

    /// Device next hops of the action (empty for drop/deliver-only).
    pub fn device_next_hops(&self) -> Vec<DeviceId> {
        match self {
            Action::Drop => Vec::new(),
            Action::Forward { next_hops, .. } => next_hops
                .iter()
                .filter_map(|nh| match nh {
                    NextHop::Device(d) => Some(*d),
                    NextHop::External => None,
                })
                .collect(),
        }
    }

    /// Does the action deliver out an external port?
    pub fn delivers_external(&self) -> bool {
        matches!(self, Action::Forward { next_hops, .. } if next_hops.contains(&NextHop::External))
    }
}

/// What packets a rule matches: a destination prefix plus optional
/// destination-port range and protocol constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchSpec {
    /// Destination prefix to match.
    pub dst: IpPrefix,
    /// Inclusive destination-port range, if constrained.
    pub dst_port: Option<(u16, u16)>,
    /// Exact protocol number, if constrained.
    pub proto: Option<u8>,
}

impl MatchSpec {
    /// Match on a destination prefix only.
    pub fn dst(prefix: IpPrefix) -> Self {
        MatchSpec {
            dst: prefix,
            dst_port: None,
            proto: None,
        }
    }

    /// Adds an exact destination port.
    pub fn with_port(mut self, port: u16) -> Self {
        self.dst_port = Some((port, port));
        self
    }

    /// Compiles the match into a predicate.
    pub fn to_pred(&self, m: &mut BddManager, layout: &HeaderLayout) -> Pred {
        let mut p = self.dst.to_pred(m, layout);
        if let Some((lo, hi)) = self.dst_port {
            let r = layout.dst_port.range(m, lo as u64, hi as u64);
            p = m.and(p, r);
        }
        if let Some(proto) = self.proto {
            let q = layout.proto.eq(m, proto as u64);
            p = m.and(p, q);
        }
        p
    }
}

/// One prioritized rule. Higher `priority` wins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Higher priorities win.
    pub priority: u32,
    /// What the rule matches.
    pub matches: MatchSpec,
    /// What it does.
    pub action: Action,
}

/// A device's forwarding table: rules ordered by descending priority.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Fib {
    rules: Vec<Rule>,
}

/// One local equivalence class: a set of packets (as a predicate) with an
/// identical action at this device (§5.1).
#[derive(Debug, Clone)]
pub struct Lec {
    /// The packets of the class.
    pub pred: Pred,
    /// Their shared action.
    pub action: Action,
}

impl Fib {
    /// Empty table (drops everything).
    pub fn new() -> Self {
        Fib::default()
    }

    /// Inserts a rule, keeping descending-priority order. Within equal
    /// priority, later insertions sort after earlier ones.
    pub fn insert(&mut self, rule: Rule) {
        let pos = self.rules.partition_point(|r| r.priority >= rule.priority);
        self.rules.insert(pos, rule);
    }

    /// Removes all rules matching the given priority and match spec;
    /// returns how many were removed.
    pub fn remove(&mut self, priority: u32, matches: &MatchSpec) -> usize {
        let before = self.rules.len();
        self.rules
            .retain(|r| !(r.priority == priority && r.matches == *matches));
        before - self.rules.len()
    }

    /// Rules in descending priority order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The **LEC builder** (§8): compresses the prioritized table into a
    /// minimal list of `(predicate, action)` classes that partition the
    /// full packet space. Packets matching no rule fall into a `Drop`
    /// class. Classes with identical actions are merged.
    pub fn local_equivalence_classes(&self, m: &mut BddManager, layout: &HeaderLayout) -> Vec<Lec> {
        let mut remaining = m.verum();
        // Group matched spaces by action.
        let mut by_action: Vec<(Action, Pred)> = Vec::new();
        for rule in &self.rules {
            if m.is_false(remaining) {
                break;
            }
            let mp = rule.matches.to_pred(m, layout);
            let eff = m.and(mp, remaining);
            if m.is_false(eff) {
                continue;
            }
            remaining = m.diff(remaining, mp);
            match by_action.iter_mut().find(|(a, _)| *a == rule.action) {
                Some((_, p)) => *p = m.or(*p, eff),
                None => by_action.push((rule.action.clone(), eff)),
            }
        }
        if !m.is_false(remaining) {
            match by_action.iter_mut().find(|(a, _)| *a == Action::Drop) {
                Some((_, p)) => *p = m.or(*p, remaining),
                None => by_action.push((Action::Drop, remaining)),
            }
        }
        by_action
            .into_iter()
            .map(|(action, pred)| Lec { pred, action })
            .collect()
    }

    /// Like [`Fib::local_equivalence_classes`], but restricted to the
    /// packets in `region`: returns classes partitioning `region` only.
    /// Used for incremental LEC maintenance after a rule update (only
    /// the updated rule's match region can change class).
    pub fn local_equivalence_classes_in(
        &self,
        region: Pred,
        m: &mut BddManager,
        layout: &HeaderLayout,
    ) -> Vec<Lec> {
        let mut remaining = region;
        let mut by_action: Vec<(Action, Pred)> = Vec::new();
        for rule in &self.rules {
            if m.is_false(remaining) {
                break;
            }
            let mp = rule.matches.to_pred(m, layout);
            let eff = m.and(mp, remaining);
            if m.is_false(eff) {
                continue;
            }
            remaining = m.diff(remaining, mp);
            match by_action.iter_mut().find(|(a, _)| *a == rule.action) {
                Some((_, p)) => *p = m.or(*p, eff),
                None => by_action.push((rule.action.clone(), eff)),
            }
        }
        if !m.is_false(remaining) {
            match by_action.iter_mut().find(|(a, _)| *a == Action::Drop) {
                Some((_, p)) => *p = m.or(*p, remaining),
                None => by_action.push((Action::Drop, remaining)),
            }
        }
        by_action
            .into_iter()
            .map(|(action, pred)| Lec { pred, action })
            .collect()
    }

    /// Looks up the effective action for a single concrete packet given as
    /// a full variable assignment (testing aid).
    pub fn lookup(&self, m: &mut BddManager, layout: &HeaderLayout, assignment: &[bool]) -> Action {
        for rule in &self.rules {
            let p = rule.matches.to_pred(m, layout);
            if m.eval(p, assignment) {
                return rule.action.clone();
            }
        }
        Action::Drop
    }
}

impl ToJson for ActionType {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                ActionType::All => "All",
                ActionType::Any => "Any",
            }
            .to_string(),
        )
    }
}

impl FromJson for ActionType {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("All") => Ok(ActionType::All),
            Some("Any") => Ok(ActionType::Any),
            _ => Err(JsonError::expected("\"All\" or \"Any\"", v)),
        }
    }
}

impl ToJson for NextHop {
    fn to_json(&self) -> Json {
        match self {
            NextHop::Device(d) => Json::Object(vec![("Device".to_string(), d.to_json())]),
            NextHop::External => Json::Str("External".to_string()),
        }
    }
}

impl FromJson for NextHop {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.as_str() == Some("External") {
            return Ok(NextHop::External);
        }
        if let Some(d) = v.get("Device") {
            return Ok(NextHop::Device(FromJson::from_json(d)?));
        }
        Err(JsonError::expected("next hop", v))
    }
}

tulkun_json::impl_json_object!(Rewrite { to });

impl ToJson for Action {
    fn to_json(&self) -> Json {
        match self {
            Action::Drop => Json::Str("Drop".to_string()),
            Action::Forward {
                mode,
                next_hops,
                rewrite,
            } => Json::Object(vec![(
                "Forward".to_string(),
                Json::Object(vec![
                    ("mode".to_string(), mode.to_json()),
                    ("next_hops".to_string(), next_hops.to_json()),
                    ("rewrite".to_string(), rewrite.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for Action {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.as_str() == Some("Drop") {
            return Ok(Action::Drop);
        }
        if let Some(f) = v.get("Forward") {
            let field = |name: &str| f.get(name).ok_or_else(|| JsonError::missing_field(name));
            return Ok(Action::Forward {
                mode: FromJson::from_json(field("mode")?)?,
                next_hops: FromJson::from_json(field("next_hops")?)?,
                rewrite: FromJson::from_json(field("rewrite")?)?,
            });
        }
        Err(JsonError::expected("action", v))
    }
}

tulkun_json::impl_json_object!(MatchSpec {
    dst,
    dst_port,
    proto
});
tulkun_json::impl_json_object!(Rule {
    priority,
    matches,
    action
});

impl ToJson for Fib {
    fn to_json(&self) -> Json {
        Json::Object(vec![("rules".to_string(), self.rules.to_json())])
    }
}

impl FromJson for Fib {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let rules: Vec<Rule> = FromJson::from_json(
            v.get("rules")
                .ok_or_else(|| JsonError::missing_field("rules"))?,
        )?;
        let mut fib = Fib::new();
        // Re-inserting keeps the descending-priority invariant even if
        // the document was edited by hand.
        for rule in rules {
            fib.insert(rule);
        }
        Ok(fib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout_and_mgr() -> (HeaderLayout, BddManager) {
        let layout = HeaderLayout::ipv4_tcp();
        let m = BddManager::new(layout.num_vars());
        (layout, m)
    }

    fn pfx(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    #[test]
    fn priority_order_is_maintained() {
        let mut fib = Fib::new();
        fib.insert(Rule {
            priority: 10,
            matches: MatchSpec::dst(pfx("10.0.0.0/8")),
            action: Action::Drop,
        });
        fib.insert(Rule {
            priority: 30,
            matches: MatchSpec::dst(pfx("10.0.0.0/24")),
            action: Action::deliver(),
        });
        fib.insert(Rule {
            priority: 20,
            matches: MatchSpec::dst(pfx("10.0.0.0/16")),
            action: Action::fwd(DeviceId(1)),
        });
        let prios: Vec<u32> = fib.rules().iter().map(|r| r.priority).collect();
        assert_eq!(prios, vec![30, 20, 10]);
    }

    #[test]
    fn lec_partitions_full_space() {
        let (layout, mut m) = layout_and_mgr();
        let mut fib = Fib::new();
        fib.insert(Rule {
            priority: 20,
            matches: MatchSpec::dst(pfx("10.0.0.0/24")),
            action: Action::fwd(DeviceId(1)),
        });
        fib.insert(Rule {
            priority: 10,
            matches: MatchSpec::dst(pfx("10.0.0.0/16")),
            action: Action::fwd(DeviceId(2)),
        });
        let lecs = fib.local_equivalence_classes(&mut m, &layout);
        // Classes must be disjoint and cover everything.
        let mut union = m.falsum();
        for (i, a) in lecs.iter().enumerate() {
            for b in &lecs[i + 1..] {
                assert!(!m.intersects(a.pred, b.pred), "LECs overlap");
            }
            union = m.or(union, a.pred);
        }
        assert!(m.is_true(union), "LECs do not cover the packet space");
        assert_eq!(lecs.len(), 3); // /24 → dev1, /16 minus /24 → dev2, rest → drop
    }

    #[test]
    fn lec_respects_priority_shadowing() {
        let (layout, mut m) = layout_and_mgr();
        let mut fib = Fib::new();
        // Low priority broad rule fully shadowed on the /24.
        fib.insert(Rule {
            priority: 5,
            matches: MatchSpec::dst(pfx("10.0.0.0/24")),
            action: Action::fwd(DeviceId(9)),
        });
        fib.insert(Rule {
            priority: 50,
            matches: MatchSpec::dst(pfx("10.0.0.0/24")),
            action: Action::Drop,
        });
        let lecs = fib.local_equivalence_classes(&mut m, &layout);
        // The /24 must be dropped; device 9 never appears.
        assert!(lecs
            .iter()
            .all(|l| l.action.device_next_hops() != vec![DeviceId(9)]));
    }

    #[test]
    fn lec_merges_identical_actions() {
        let (layout, mut m) = layout_and_mgr();
        let mut fib = Fib::new();
        fib.insert(Rule {
            priority: 10,
            matches: MatchSpec::dst(pfx("10.0.0.0/24")),
            action: Action::fwd(DeviceId(1)),
        });
        fib.insert(Rule {
            priority: 10,
            matches: MatchSpec::dst(pfx("10.0.1.0/24")),
            action: Action::fwd(DeviceId(1)),
        });
        let lecs = fib.local_equivalence_classes(&mut m, &layout);
        assert_eq!(lecs.len(), 2); // merged class + default drop
        let (layout2, mut m2) = layout_and_mgr();
        let expect = pfx("10.0.0.0/23").to_pred(&mut m2, &layout2);
        let got = lecs.iter().find(|l| l.action != Action::Drop).unwrap().pred;
        // Same canonical shape in both managers (fresh managers, same build order).
        assert_eq!(m.sat_count(got), m2.sat_count(expect));
    }

    #[test]
    fn empty_fib_drops_everything() {
        let (layout, mut m) = layout_and_mgr();
        let fib = Fib::new();
        let lecs = fib.local_equivalence_classes(&mut m, &layout);
        assert_eq!(lecs.len(), 1);
        assert_eq!(lecs[0].action, Action::Drop);
        assert!(m.is_true(lecs[0].pred));
    }

    #[test]
    fn port_match_refines_classes() {
        let (layout, mut m) = layout_and_mgr();
        let mut fib = Fib::new();
        fib.insert(Rule {
            priority: 20,
            matches: MatchSpec::dst(pfx("10.0.1.0/24")).with_port(80),
            action: Action::fwd(DeviceId(1)),
        });
        fib.insert(Rule {
            priority: 10,
            matches: MatchSpec::dst(pfx("10.0.1.0/24")),
            action: Action::fwd(DeviceId(2)),
        });
        let lecs = fib.local_equivalence_classes(&mut m, &layout);
        assert_eq!(lecs.len(), 3);
        // Port-80 class is a strict subset of the /24 predicate.
        let p24 = pfx("10.0.1.0/24").to_pred(&mut m, &layout);
        let c80 = lecs
            .iter()
            .find(|l| l.action == Action::fwd(DeviceId(1)))
            .unwrap()
            .pred;
        assert!(m.implies(c80, p24));
    }

    #[test]
    fn remove_deletes_matching_rules() {
        let mut fib = Fib::new();
        let ms = MatchSpec::dst(pfx("10.0.0.0/24"));
        fib.insert(Rule {
            priority: 10,
            matches: ms,
            action: Action::Drop,
        });
        fib.insert(Rule {
            priority: 20,
            matches: ms,
            action: Action::deliver(),
        });
        assert_eq!(fib.remove(10, &ms), 1);
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.remove(99, &ms), 0);
    }

    #[test]
    fn lookup_follows_priority() {
        let (layout, mut m) = layout_and_mgr();
        let mut fib = Fib::new();
        fib.insert(Rule {
            priority: 1,
            matches: MatchSpec::dst(pfx("0.0.0.0/0")),
            action: Action::Drop,
        });
        fib.insert(Rule {
            priority: 9,
            matches: MatchSpec::dst(pfx("10.0.0.0/8")),
            action: Action::deliver(),
        });
        let mut bits = vec![false; layout.num_vars() as usize];
        // dst = 10.0.0.1
        let addr = u32::from_be_bytes([10, 0, 0, 1]);
        for i in 0..32 {
            bits[i as usize] = (addr >> (31 - i)) & 1 == 1;
        }
        assert_eq!(fib.lookup(&mut m, &layout, &bits), Action::deliver());
        let bits0 = vec![false; layout.num_vars() as usize];
        assert_eq!(fib.lookup(&mut m, &layout, &bits0), Action::Drop);
    }
}
