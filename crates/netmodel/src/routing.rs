//! Shortest-path / ECMP FIB generation and error injection.
//!
//! The evaluation datasets need data planes that look like real ones:
//! longest-prefix-match rules computed by shortest-path routing with ECMP
//! groups, plus controlled errors (blackholes, loops, detours) for the
//! error-detection experiments.

use crate::fib::{Action, ActionType, Fib, MatchSpec, NextHop, Rule};
use crate::network::{Network, RuleUpdate};
use crate::prefix::IpPrefix;
use crate::topology::{DeviceId, LinkId, Topology};

/// How ECMP groups are encoded in generated rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcmpMode {
    /// Multiple equal-cost next hops become one `ANY`-type group
    /// (the realistic encoding; creates multiple universes).
    Any,
    /// Only the first (lowest-id) shortest-path next hop is used.
    Single,
    /// Multiple equal-cost next hops become an `ALL`-type group
    /// (replication; used to build multicast-style data planes).
    All,
}

/// Options for FIB generation.
#[derive(Debug, Clone)]
pub struct RoutingOptions {
    /// How equal-cost next-hop sets become actions.
    pub ecmp: EcmpMode,
    /// Links considered failed while computing routes.
    pub down_links: Vec<LinkId>,
}

impl Default for RoutingOptions {
    fn default() -> Self {
        RoutingOptions {
            ecmp: EcmpMode::Any,
            down_links: Vec::new(),
        }
    }
}

/// For every device, the neighbors that lie on a shortest path toward
/// `dst` (empty at `dst` itself and at unreachable devices).
pub fn shortest_path_next_hops(
    topo: &Topology,
    dst: DeviceId,
    down: &[LinkId],
) -> Vec<Vec<DeviceId>> {
    let dist = topo.bfs_hops(dst, down);
    topo.devices()
        .map(|d| {
            if d == dst || dist[d.idx()] == u32::MAX {
                return Vec::new();
            }
            let mut hops: Vec<DeviceId> = topo
                .neighbors(d)
                .iter()
                .filter(|(n, l)| !down.contains(l) && dist[n.idx()] + 1 == dist[d.idx()])
                .map(|(n, _)| *n)
                .collect();
            hops.sort();
            hops
        })
        .collect()
}

/// Generates FIBs implementing shortest-path routing toward every
/// `(device, prefix)` external-port pair of the topology.
pub fn generate_fibs(topo: &Topology, opts: &RoutingOptions) -> Vec<Fib> {
    let mut fibs = vec![Fib::new(); topo.num_devices()];
    for (dst, prefix) in topo.external_map() {
        install_route(topo, &mut fibs, dst, prefix, opts);
    }
    fibs
}

/// Installs the rules that route `prefix` toward `dst` into `fibs`.
pub fn install_route(
    topo: &Topology,
    fibs: &mut [Fib],
    dst: DeviceId,
    prefix: IpPrefix,
    opts: &RoutingOptions,
) {
    let next = shortest_path_next_hops(topo, dst, &opts.down_links);
    for d in topo.devices() {
        let rule = if d == dst {
            Rule {
                priority: prefix.len as u32,
                matches: MatchSpec::dst(prefix),
                action: Action::deliver(),
            }
        } else {
            let hops = &next[d.idx()];
            if hops.is_empty() {
                continue; // unreachable: leave the default drop
            }
            let action = match (opts.ecmp, hops.len()) {
                (_, 1) | (EcmpMode::Single, _) => Action::fwd(hops[0]),
                (EcmpMode::Any, _) => Action::fwd_any(hops.iter().copied()),
                (EcmpMode::All, _) => Action::fwd_all(hops.iter().copied()),
            };
            Rule {
                priority: prefix.len as u32,
                matches: MatchSpec::dst(prefix),
                action,
            }
        };
        fibs[d.idx()].insert(rule);
    }
}

/// A deliberately injected data plane error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectedError {
    /// `device` silently drops `prefix` (high-priority drop rule).
    Blackhole {
        /// Where the drop is installed.
        device: DeviceId,
        /// The dropped prefix.
        prefix: IpPrefix,
    },
    /// `device` forwards `prefix` to a neighbor that is *farther* from the
    /// destination, creating a detour or loop.
    Detour {
        /// Where the detour is installed.
        device: DeviceId,
        /// The detoured prefix.
        prefix: IpPrefix,
        /// The (wrong) next hop used.
        wrong_hop: DeviceId,
    },
}

impl InjectedError {
    /// The rule update realizing the error (priority 100 outranks all
    /// generated prefix-length priorities, which are ≤ 32).
    pub fn to_update(&self) -> RuleUpdate {
        match self {
            InjectedError::Blackhole { device, prefix } => RuleUpdate::Insert {
                device: *device,
                rule: Rule {
                    priority: 100,
                    matches: MatchSpec::dst(*prefix),
                    action: Action::Drop,
                },
            },
            InjectedError::Detour {
                device,
                prefix,
                wrong_hop,
            } => RuleUpdate::Insert {
                device: *device,
                rule: Rule {
                    priority: 100,
                    matches: MatchSpec::dst(*prefix),
                    action: Action::Forward {
                        mode: ActionType::All,
                        next_hops: vec![NextHop::Device(*wrong_hop)],
                        rewrite: None,
                    },
                },
            },
        }
    }
}

/// Applies injected errors to a network snapshot.
pub fn inject_errors(net: &mut Network, errors: &[InjectedError]) {
    for e in errors {
        net.apply(&e.to_update());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2a of the paper: S–A, A–B, A–W, B–W, B–D, W–D (C omitted).
    fn line_with_diamond() -> (Topology, [DeviceId; 5]) {
        let mut t = Topology::new();
        let s = t.add_device("S");
        let a = t.add_device("A");
        let b = t.add_device("B");
        let w = t.add_device("W");
        let d = t.add_device("D");
        t.add_link(s, a, 1000);
        t.add_link(a, b, 1000);
        t.add_link(a, w, 1000);
        t.add_link(b, w, 1000);
        t.add_link(b, d, 1000);
        t.add_link(w, d, 1000);
        (t, [s, a, b, w, d])
    }

    #[test]
    fn next_hops_follow_bfs() {
        let (t, [s, a, b, w, d]) = line_with_diamond();
        let nh = shortest_path_next_hops(&t, d, &[]);
        assert_eq!(nh[d.idx()], Vec::<DeviceId>::new());
        assert_eq!(nh[b.idx()], vec![d]);
        assert_eq!(nh[w.idx()], vec![d]);
        assert_eq!(nh[a.idx()], vec![b, w]); // ECMP
        assert_eq!(nh[s.idx()], vec![a]);
    }

    #[test]
    fn next_hops_respect_down_links() {
        let (t, [_, a, b, w, d]) = line_with_diamond();
        let l = t.link_between(b, d).unwrap();
        let nh = shortest_path_next_hops(&t, d, &[l]);
        assert_eq!(nh[b.idx()], vec![w]); // reroute via w
        assert_eq!(nh[a.idx()], vec![w]); // b is now farther
    }

    #[test]
    fn generated_fibs_deliver_at_destination() {
        let (mut t, [s, a, _, _, d]) = line_with_diamond();
        let p: IpPrefix = "10.0.0.0/23".parse().unwrap();
        t.add_external_prefix(d, p);
        let fibs = generate_fibs(&t, &RoutingOptions::default());
        assert!(fibs[d.idx()].rules()[0].action.delivers_external());
        // A has an ANY ECMP group of size 2.
        match &fibs[a.idx()].rules()[0].action {
            Action::Forward {
                mode: ActionType::Any,
                next_hops,
                ..
            } => {
                assert_eq!(next_hops.len(), 2)
            }
            other => panic!("unexpected action {other:?}"),
        }
        // S forwards to A.
        assert_eq!(fibs[s.idx()].rules()[0].action.device_next_hops(), vec![a]);
    }

    #[test]
    fn single_mode_picks_one_hop() {
        let (mut t, [_, a, b, _, d]) = line_with_diamond();
        t.add_external_prefix(d, "10.0.0.0/23".parse().unwrap());
        let opts = RoutingOptions {
            ecmp: EcmpMode::Single,
            ..Default::default()
        };
        let fibs = generate_fibs(&t, &opts);
        assert_eq!(fibs[a.idx()].rules()[0].action.device_next_hops(), vec![b]);
    }

    #[test]
    fn blackhole_injection_overrides_route() {
        let (mut t, [_, a, _, _, d]) = line_with_diamond();
        let p: IpPrefix = "10.0.0.0/23".parse().unwrap();
        t.add_external_prefix(d, p);
        let fibs = generate_fibs(&t, &RoutingOptions::default());
        let mut net = Network::new(t);
        net.fibs = fibs;
        inject_errors(
            &mut net,
            &[InjectedError::Blackhole {
                device: a,
                prefix: p,
            }],
        );
        // The top-priority rule at A is now a drop.
        assert_eq!(net.fib(a).rules()[0].action, Action::Drop);
    }
}
