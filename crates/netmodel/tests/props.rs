#![allow(clippy::needless_range_loop)] // bit-packing loops read clearer indexed
//! Property tests for the network substrate: LEC tables must partition
//! the packet space and agree with priority-ordered rule lookup; routing
//! must produce shortest paths.

use proptest::prelude::*;
use tulkun_bdd::{BddManager, HeaderLayout};
use tulkun_netmodel::fib::{Action, Fib, MatchSpec, Rule};
use tulkun_netmodel::routing::{generate_fibs, shortest_path_next_hops, RoutingOptions};
use tulkun_netmodel::topology::{DeviceId, Topology};
use tulkun_netmodel::IpPrefix;

fn random_fib() -> impl Strategy<Value = Fib> {
    proptest::collection::vec(
        (
            0u32..4,
            16u8..28,
            0u32..40,
            0u32..5,
            proptest::option::of(0u16..100),
        ),
        1..12,
    )
    .prop_map(|rules| {
        let mut fib = Fib::new();
        for (prio, plen, net, act, port) in rules {
            // Prefixes inside 10.0.0.0/8 with varying length.
            let addr = 0x0A00_0000u32 | (net << 12);
            let mut matches = MatchSpec::dst(IpPrefix::new(addr, plen));
            if let Some(p) = port {
                matches = matches.with_port(p);
            }
            let action = match act {
                0 => Action::Drop,
                1 => Action::deliver(),
                2 => Action::fwd(DeviceId(1)),
                3 => Action::fwd_all([DeviceId(1), DeviceId(2)]),
                _ => Action::fwd_any([DeviceId(2), DeviceId(3)]),
            };
            fib.insert(Rule {
                priority: prio,
                matches,
                action,
            });
        }
        fib
    })
}

proptest! {
    #[test]
    fn lecs_partition_and_agree_with_lookup(fib in random_fib(), probes in proptest::collection::vec((any::<u32>(), any::<u16>()), 16)) {
        let layout = HeaderLayout::ipv4_tcp();
        let mut m = BddManager::new(layout.num_vars());
        let lecs = fib.local_equivalence_classes(&mut m, &layout);

        // Disjoint cover of the full space.
        let mut union = m.falsum();
        for (i, a) in lecs.iter().enumerate() {
            for b in &lecs[i + 1..] {
                prop_assert!(!m.intersects(a.pred, b.pred), "LECs overlap");
            }
            union = m.or(union, a.pred);
        }
        prop_assert!(m.is_true(union), "LECs do not cover");

        // Each probe packet's LEC action equals priority-ordered lookup.
        for (ip, port) in probes {
            let ip = 0x0A00_0000 | (ip & 0x00FF_FFFF); // inside 10/8
            let mut bits = vec![false; layout.num_vars() as usize];
            for i in 0..32 {
                bits[i] = (ip >> (31 - i)) & 1 == 1;
            }
            for i in 0..16 {
                bits[32 + i] = (port >> (15 - i)) & 1 == 1;
            }
            let expected = fib.lookup(&mut m, &layout, &bits);
            let via_lec = lecs
                .iter()
                .find(|l| m.eval(l.pred, &bits))
                .map(|l| l.action.clone())
                .unwrap();
            prop_assert_eq!(expected, via_lec);
        }
    }
}

fn random_topology() -> impl Strategy<Value = Topology> {
    (
        3usize..10,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..12),
    )
        .prop_map(|(n, extra)| {
            let mut t = Topology::new();
            let ids: Vec<DeviceId> = (0..n).map(|i| t.add_device(format!("r{i}"))).collect();
            for i in 1..n {
                t.add_link(ids[i - 1], ids[i], 1000);
            }
            for (a, b) in extra {
                let a = a as usize % n;
                let b = b as usize % n;
                if a != b && t.link_between(ids[a], ids[b]).is_none() {
                    t.add_link(ids[a], ids[b], 1000);
                }
            }
            t
        })
}

proptest! {
    #[test]
    fn next_hops_strictly_decrease_distance(topo in random_topology()) {
        for dst in topo.devices() {
            let dist = topo.bfs_hops(dst, &[]);
            let nh = shortest_path_next_hops(&topo, dst, &[]);
            for d in topo.devices() {
                for &h in &nh[d.idx()] {
                    prop_assert_eq!(dist[h.idx()] + 1, dist[d.idx()]);
                }
                // Reachable non-destination devices have at least one hop.
                if d != dst && dist[d.idx()] != u32::MAX {
                    prop_assert!(!nh[d.idx()].is_empty());
                }
            }
        }
    }

    #[test]
    fn generated_routes_reach_their_destination(topo in random_topology()) {
        let mut topo = topo;
        // Announce one prefix at the last device.
        let dst = DeviceId(topo.num_devices() as u32 - 1);
        topo.add_external_prefix(dst, "10.0.0.0/24".parse().unwrap());
        let fibs = generate_fibs(&topo, &RoutingOptions::default());
        // Follow first-next-hop pointers: must reach dst within n hops.
        for src in topo.devices() {
            let mut cur = src;
            for _ in 0..topo.num_devices() {
                if cur == dst {
                    break;
                }
                let rule = &fibs[cur.idx()].rules()[0];
                let hops = rule.action.device_next_hops();
                prop_assert!(!hops.is_empty(), "no route at {}", topo.name(cur));
                cur = hops[0];
            }
            prop_assert_eq!(cur, dst, "walk from {} did not reach dst", topo.name(src));
        }
    }
}
