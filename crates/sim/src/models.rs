//! The four commodity switch models of §9.4, abstracted as CPU speed
//! factors relative to the x86 server the simulator runs on.

/// A switch model: its on-device CPU runs verifier code `cpu_factor`
/// times slower than the simulation host. A model with `fixed_ns > 0`
/// ignores the measured host time entirely and charges a flat cost per
/// unit of work instead (see [`SwitchModel::LOCKSTEP`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchModel {
    /// Vendor/model label used in figures.
    pub name: &'static str,
    /// CPU slowdown relative to the simulation host.
    pub cpu_factor: f64,
    /// Flat virtual cost per charged unit of work, ns (0 = scale the
    /// measured host time by `cpu_factor`).
    pub fixed_ns: u64,
}

impl SwitchModel {
    /// Mellanox SN2700 (x86 Celeron-class CPU).
    pub const MELLANOX: SwitchModel = SwitchModel {
        name: "Mellanox",
        cpu_factor: 1.6,
        fixed_ns: 0,
    };
    /// UfiSpace S9180-32X (x86 Xeon-D-class CPU).
    pub const UFISPACE: SwitchModel = SwitchModel {
        name: "UfiSpace",
        cpu_factor: 1.8,
        fixed_ns: 0,
    };
    /// Edgecore Wedge100-32X (x86 Atom-class CPU).
    pub const EDGECORE: SwitchModel = SwitchModel {
        name: "Edgecore",
        cpu_factor: 2.2,
        fixed_ns: 0,
    };
    /// Centec (ARM CPU; the slowest in Fig. 14).
    pub const CENTEC: SwitchModel = SwitchModel {
        name: "Centec",
        cpu_factor: 4.0,
        fixed_ns: 0,
    };
    /// The deterministic lockstep model: every charged unit of work
    /// costs a flat 1µs of virtual time regardless of measured host
    /// time. The virtual timeline — and therefore the event
    /// interleaving, the fault RNG draw order, and the flight-recorder
    /// journal — becomes a pure function of the seed, which is what
    /// `tulkun explain` and the golden explain tests rely on. Not a
    /// benchmarked model; timing figures under it are meaningless.
    pub const LOCKSTEP: SwitchModel = SwitchModel {
        name: "Lockstep",
        cpu_factor: 1.0,
        fixed_ns: 1_000,
    };

    /// All four models, as benchmarked in §9.4.
    pub const ALL: [SwitchModel; 4] =
        [Self::MELLANOX, Self::UFISPACE, Self::EDGECORE, Self::CENTEC];

    /// Scales a measured host duration to this switch's CPU (or
    /// charges the flat per-unit cost of a deterministic model).
    pub fn scale_ns(&self, host_ns: u64) -> u64 {
        if self.fixed_ns > 0 {
            return self.fixed_ns;
        }
        (host_ns as f64 * self.cpu_factor) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centec_is_slowest() {
        assert!(SwitchModel::ALL
            .iter()
            .all(|m| m.cpu_factor <= SwitchModel::CENTEC.cpu_factor));
        assert_eq!(SwitchModel::CENTEC.scale_ns(1000), 4000);
    }
}
