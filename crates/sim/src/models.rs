//! The four commodity switch models of §9.4, abstracted as CPU speed
//! factors relative to the x86 server the simulator runs on.

/// A switch model: its on-device CPU runs verifier code `cpu_factor`
/// times slower than the simulation host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchModel {
    /// Vendor/model label used in figures.
    pub name: &'static str,
    /// CPU slowdown relative to the simulation host.
    pub cpu_factor: f64,
}

impl SwitchModel {
    /// Mellanox SN2700 (x86 Celeron-class CPU).
    pub const MELLANOX: SwitchModel = SwitchModel {
        name: "Mellanox",
        cpu_factor: 1.6,
    };
    /// UfiSpace S9180-32X (x86 Xeon-D-class CPU).
    pub const UFISPACE: SwitchModel = SwitchModel {
        name: "UfiSpace",
        cpu_factor: 1.8,
    };
    /// Edgecore Wedge100-32X (x86 Atom-class CPU).
    pub const EDGECORE: SwitchModel = SwitchModel {
        name: "Edgecore",
        cpu_factor: 2.2,
    };
    /// Centec (ARM CPU; the slowest in Fig. 14).
    pub const CENTEC: SwitchModel = SwitchModel {
        name: "Centec",
        cpu_factor: 4.0,
    };

    /// All four models, as benchmarked in §9.4.
    pub const ALL: [SwitchModel; 4] =
        [Self::MELLANOX, Self::UFISPACE, Self::EDGECORE, Self::CENTEC];

    /// Scales a measured host duration to this switch's CPU.
    pub fn scale_ns(&self, host_ns: u64) -> u64 {
        (host_ns as f64 * self.cpu_factor) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centec_is_slowest() {
        assert!(SwitchModel::ALL
            .iter()
            .all(|m| m.cpu_factor <= SwitchModel::CENTEC.cpu_factor));
        assert_eq!(SwitchModel::CENTEC.scale_ns(1000), 4000);
    }
}
