//! The tokio distributed runner: one async task per device verifier,
//! in-order channels for DVM links — the deployment shape of the
//! paper's prototype (one verification agent per switch over TCP).
//!
//! Quiescence is detected with an in-flight message counter: a message's
//! outputs are enqueued (and counted) before its own count is released,
//! so the counter only reaches zero when no message is queued or being
//! processed anywhere.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use tokio::sync::{mpsc, oneshot, Notify};
use tulkun_bdd::serial::PortablePred;
use tulkun_core::count::Counts;
use tulkun_core::dpvnet::NodeId;
use tulkun_core::dvm::{DeviceVerifier, Envelope, VerifierConfig};
use tulkun_core::planner::{CountingPlan, NodeTask};
use tulkun_core::spec::PacketSpace;
use tulkun_core::verify::{self, Report};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::DeviceId;

/// One node's exported counting results.
type NodeResults = Vec<(NodeId, Vec<(PortablePred, Counts)>)>;

enum DeviceMsg {
    Dvm(Envelope),
    FibUpdate(RuleUpdate),
    Collect(Vec<NodeId>, oneshot::Sender<NodeResults>),
    Shutdown,
}

/// A running distributed verification: per-device tokio tasks plus the
/// in-flight accounting needed to observe quiescence.
pub struct DistributedRun {
    plan: CountingPlan,
    senders: BTreeMap<DeviceId, mpsc::UnboundedSender<DeviceMsg>>,
    inflight: Arc<AtomicI64>,
    quiescent: Arc<Notify>,
    handles: Vec<tokio::task::JoinHandle<()>>,
}

impl DistributedRun {
    /// Spawns one verifier task per participating device and performs
    /// the initial (burst) exchange.
    pub fn spawn(net: &Network, plan: &CountingPlan, ps: &PacketSpace) -> DistributedRun {
        let packet_space = verify::compile_packet_space(&net.layout, ps);
        let vcfg = VerifierConfig {
            n_exprs: plan.exprs.len(),
            track_escapes: plan.track_escapes,
            reduce: plan.reduce,
            dest_mode: Default::default(),
        };
        let mut by_dev: BTreeMap<DeviceId, Vec<NodeTask>> = BTreeMap::new();
        for t in &plan.tasks {
            by_dev.entry(t.dev).or_default().push(t.clone());
        }

        let inflight = Arc::new(AtomicI64::new(0));
        let quiescent = Arc::new(Notify::new());
        let mut senders: BTreeMap<DeviceId, mpsc::UnboundedSender<DeviceMsg>> = BTreeMap::new();
        let mut receivers: BTreeMap<DeviceId, mpsc::UnboundedReceiver<DeviceMsg>> = BTreeMap::new();
        for &dev in by_dev.keys() {
            let (tx, rx) = mpsc::unbounded_channel();
            senders.insert(dev, tx);
            receivers.insert(dev, rx);
        }

        let mut handles = Vec::new();
        for (dev, tasks) in by_dev {
            let mut verifier = DeviceVerifier::new(
                dev,
                net.layout,
                net.fib(dev).clone(),
                tasks,
                &packet_space,
                vcfg.clone(),
            );
            let mut rx = receivers.remove(&dev).expect("receiver");
            let peers = senders.clone();
            let inflight = inflight.clone();
            let quiescent = quiescent.clone();

            // The initial messages count as in-flight before any task
            // starts, so quiescence cannot be observed prematurely.
            let init = verifier.init();
            inflight.fetch_add(init.len() as i64, Ordering::SeqCst);
            for env in &init {
                if let Some(tx) = peers.get(&env.to) {
                    let _ = tx.send(DeviceMsg::Dvm(env.clone()));
                } else {
                    inflight.fetch_sub(1, Ordering::SeqCst);
                }
            }

            handles.push(tokio::spawn(async move {
                while let Some(msg) = rx.recv().await {
                    match msg {
                        DeviceMsg::Dvm(env) => {
                            let out = verifier.handle(&env);
                            route(&peers, out, &inflight);
                            release(&inflight, &quiescent);
                        }
                        DeviceMsg::FibUpdate(u) => {
                            let out = verifier.handle_fib_update(&u);
                            route(&peers, out, &inflight);
                            release(&inflight, &quiescent);
                        }
                        DeviceMsg::Collect(nodes, reply) => {
                            let results = nodes
                                .into_iter()
                                .map(|n| (n, verifier.node_result(n)))
                                .collect();
                            let _ = reply.send(results);
                        }
                        DeviceMsg::Shutdown => break,
                    }
                }
            }));
        }

        DistributedRun {
            plan: plan.clone(),
            senders,
            inflight,
            quiescent,
            handles,
        }
    }

    /// Waits until no DVM message is queued or being processed.
    pub async fn quiesce(&self) {
        loop {
            if self.inflight.load(Ordering::SeqCst) == 0 {
                return;
            }
            self.quiescent.notified().await;
        }
    }

    /// Injects a rule update at its device (counts as one in-flight
    /// event until processed).
    pub fn inject_update(&self, update: RuleUpdate) {
        if let Some(tx) = self.senders.get(&update.device()) {
            self.inflight.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(DeviceMsg::FibUpdate(update));
        }
    }

    /// Collects source results and evaluates the invariant.
    pub async fn report(&self) -> Report {
        // Group source nodes by device.
        let mut by_dev: BTreeMap<DeviceId, Vec<NodeId>> = BTreeMap::new();
        for (dev, node) in self.plan.dpvnet.sources() {
            by_dev.entry(*dev).or_default().push(*node);
        }
        let mut results: BTreeMap<(DeviceId, NodeId), Vec<(PortablePred, Counts)>> =
            BTreeMap::new();
        for (dev, nodes) in by_dev {
            let Some(tx) = self.senders.get(&dev) else {
                continue;
            };
            let (reply_tx, reply_rx) = oneshot::channel();
            if tx.send(DeviceMsg::Collect(nodes, reply_tx)).is_err() {
                continue;
            }
            if let Ok(rs) = reply_rx.await {
                for (node, r) in rs {
                    results.insert((dev, node), r);
                }
            }
        }
        verify::evaluate_sources(&self.plan, |dev, node| {
            results.get(&(dev, node)).cloned().unwrap_or_default()
        })
    }

    /// Shuts all device tasks down.
    pub async fn shutdown(self) {
        for tx in self.senders.values() {
            let _ = tx.send(DeviceMsg::Shutdown);
        }
        for h in self.handles {
            let _ = h.await;
        }
    }
}

fn route(
    peers: &BTreeMap<DeviceId, mpsc::UnboundedSender<DeviceMsg>>,
    out: Vec<Envelope>,
    inflight: &AtomicI64,
) {
    inflight.fetch_add(out.len() as i64, Ordering::SeqCst);
    for env in out {
        match peers.get(&env.to) {
            Some(tx) if tx.send(DeviceMsg::Dvm(env)).is_ok() => {}
            _ => {
                inflight.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

fn release(inflight: &AtomicI64, quiescent: &Notify) {
    if inflight.fetch_sub(1, Ordering::SeqCst) == 1 {
        quiescent.notify_waiters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_core::count::CountExpr;
    use tulkun_core::planner::Planner;
    use tulkun_core::spec::{Behavior, Invariant, PathExpr};
    use tulkun_datasets::fig2a_network;
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn distributed_run_matches_reference() {
        let net = fig2a_network();
        let inv = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress(["S"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("S .* W .* D").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap();

        let run = DistributedRun::spawn(&net, cp, &inv.packet_space);
        run.quiesce().await;
        let report = run.report().await;
        assert!(!report.holds());
        assert_eq!(report.violations.len(), 1);

        // Incremental fix, as in Fig. 2.
        let b = net.topology.device("B").unwrap();
        let w = net.topology.device("W").unwrap();
        run.inject_update(RuleUpdate::Insert {
            device: b,
            rule: Rule {
                priority: 50,
                matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
                action: Action::fwd(w),
            },
        });
        run.quiesce().await;
        let report = run.report().await;
        assert!(report.holds(), "{:?}", report.violations);
        run.shutdown().await;
    }
}
