//! The distributed runner: one OS thread per device verifier, in-order
//! channels for DVM links — the deployment shape of the paper's
//! prototype (one verification agent per switch over TCP). A thin
//! wrapper over [`ThreadedEngine`], the runtime layer's concurrent
//! substrate.
//!
//! Quiescence is detected with the runtime's in-flight gauge: a
//! message's outputs are enqueued (and counted) before its own count is
//! released, so the gauge only reaches zero when no message is queued
//! or being processed anywhere.

use crate::runtime::{
    DevicePanic, EngineConfig, LecCache, RuntimeStats, ThreadedEngine, WatchdogConfig,
    WatchdogVerdict,
};
use tulkun_core::churn::TopologyEvent;
use tulkun_core::event::{EventOutcome, RuntimeEvent, Substrate};
use tulkun_core::intent::{IntentDelta, IntentId, IntentStore};
use tulkun_core::planner::{CountingPlan, PlanError};
use tulkun_core::spec::{Invariant, PacketSpace};
use tulkun_core::verify::Report;
use tulkun_netmodel::network::{Network, RuleUpdate};

/// A running distributed verification: per-device threads plus the
/// in-flight accounting needed to observe quiescence.
pub struct DistributedRun {
    engine: ThreadedEngine,
}

impl DistributedRun {
    /// Spawns one verifier thread per participating device and performs
    /// the initial (burst) exchange.
    pub fn spawn(net: &Network, plan: &CountingPlan, ps: &PacketSpace) -> DistributedRun {
        let cache = LecCache::new();
        Self::spawn_with(net, plan, ps, &EngineConfig::default(), &cache)
    }

    /// Like [`DistributedRun::spawn`], with explicit engine options and
    /// a shared LEC cache (`parallel_init` builds device verifiers
    /// concurrently before the threads start).
    pub fn spawn_with(
        net: &Network,
        plan: &CountingPlan,
        ps: &PacketSpace,
        cfg: &EngineConfig,
        lec_cache: &LecCache,
    ) -> DistributedRun {
        DistributedRun {
            engine: ThreadedEngine::spawn(net, plan, ps, cfg, lec_cache),
        }
    }

    /// Blocks until no DVM message is queued or being processed.
    pub fn quiesce(&self) {
        self.engine.wait_quiescent();
    }

    /// Injects a rule update at its device (counts as one in-flight
    /// event until processed).
    pub fn inject_update(&self, update: RuleUpdate) {
        self.engine.inject_update(update);
    }

    /// Injects a burst of rule updates, coalesced into one batch
    /// message per affected device (see
    /// [`crate::runtime::ThreadedEngine::inject_batch`]).
    pub fn inject_batch(&self, updates: Vec<RuleUpdate>) {
        self.engine.inject_batch(updates);
    }

    /// Crashes and restarts one device's verification agent; every
    /// other device replays its durable protocol state toward it. Call
    /// [`DistributedRun::quiesce`] to let the recovery exchange drain.
    pub fn crash_restart(&mut self, dev: tulkun_netmodel::DeviceId) {
        self.engine.crash_restart(dev);
    }

    /// Waits for quiescence under the convergence watchdog: per-device
    /// progress heartbeats distinguish "still converging" from a
    /// wedged, dead or partitioned device (see
    /// [`crate::runtime::ThreadedEngine::wait_quiescent_watched`]).
    pub fn quiesce_watched(&self, cfg: &WatchdogConfig) -> WatchdogVerdict {
        self.engine.wait_quiescent_watched(cfg)
    }

    /// Applies one live topology churn event (epoch fence + incremental
    /// re-plan, delivered as one atomic bundle per device thread); call
    /// [`DistributedRun::quiesce`] or
    /// [`DistributedRun::quiesce_watched`] to let re-convergence drain.
    pub fn apply_topology_event(
        &mut self,
        ev: &TopologyEvent,
        base: &tulkun_netmodel::topology::Topology,
        inv: &tulkun_core::spec::Invariant,
    ) -> Result<(), tulkun_core::planner::PlanError> {
        self.engine.apply_topology_event(ev, base, inv)
    }

    /// The current topology generation (0 until the first churn event).
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// The runtime intent store (read-only).
    pub fn intents(&self) -> &IntentStore {
        self.engine.intents()
    }

    /// Compiles an invariant and installs it as a runtime intent (one
    /// atomic bundle per device thread); call
    /// [`DistributedRun::quiesce`] to let re-convergence drain. Spawn
    /// with [`EngineConfig::all_devices`] if intents may task devices
    /// the initial plan skipped.
    pub fn install_intent(
        &mut self,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta), PlanError> {
        self.engine.install_intent(name, inv)
    }

    /// [`DistributedRun::install_intent`] under a caller-chosen id.
    pub fn install_intent_as(
        &mut self,
        id: IntentId,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta), PlanError> {
        self.engine.install_intent_as(id, name, inv)
    }

    /// Removes a live intent (shared nodes survive); call
    /// [`DistributedRun::quiesce`] to let re-convergence drain.
    pub fn remove_intent(&mut self, id: IntentId) -> Result<IntentDelta, PlanError> {
        self.engine.remove_intent(id)
    }

    /// Collects source results and evaluates the invariant.
    pub fn report(&self) -> Report {
        self.engine.report()
    }

    /// Shuts all device threads down, joining every handle. Returns the
    /// merged per-device runtime stats, or the panics of crashed device
    /// tasks. Dropping without calling this still joins all threads.
    pub fn shutdown(self) -> Result<RuntimeStats, Vec<DevicePanic>> {
        self.engine.shutdown()
    }
}

impl Substrate for DistributedRun {
    /// Applies one [`RuntimeEvent`] and waits for quiescence (delegates
    /// to the threaded engine's uniform entry point).
    fn apply_event(&mut self, ev: &RuntimeEvent) -> Result<EventOutcome, PlanError> {
        self.engine.apply_event(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_core::count::CountExpr;
    use tulkun_core::planner::Planner;
    use tulkun_core::spec::{Behavior, Invariant, PacketSpace, PathExpr};
    use tulkun_datasets::fig2a_network;
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};

    #[test]
    fn distributed_run_matches_reference() {
        let net = fig2a_network();
        let inv = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress(["S"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("S .* W .* D").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap();

        let run = DistributedRun::spawn(&net, cp, &inv.packet_space);
        run.quiesce();
        let report = run.report();
        assert!(!report.holds());
        assert_eq!(report.violations.len(), 1);

        // Incremental fix, as in Fig. 2.
        let b = net.topology.device("B").unwrap();
        let w = net.topology.device("W").unwrap();
        run.inject_update(RuleUpdate::Insert {
            device: b,
            rule: Rule {
                priority: 50,
                matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
                action: Action::fwd(w),
            },
        });
        run.quiesce();
        let report = run.report();
        assert!(report.holds(), "{:?}", report.violations);
        let stats = run.shutdown().expect("clean shutdown");
        assert!(stats.messages > 0);
        assert!(stats.per_device.values().any(|s| s.busy_ns > 0));
    }
}
