//! The discrete-event simulator for distributed counting plans — the
//! [`crate::runtime::Engine`] instantiated with a virtual-time
//! [`LatencyTransport`] and a [`VirtualClock`].
//!
//! Each device is a sequential processor: an event arriving at time `t`
//! starts processing at `max(t, device_free)`, runs for its *measured*
//! host CPU time scaled by the switch model, and emits its messages at
//! completion. Messages between neighboring devices add the link's
//! propagation latency. Verification time is the instant the system
//! quiesces — the same definition as §9.3.1 ("from the arrival of rule
//! updates at devices to the time when all invariants are verified,
//! including the propagation delays").

use crate::faults::FaultyTransport;
use crate::models::SwitchModel;
use crate::runtime::{Engine, EngineConfig, LatencyTransport, RuntimeStats, VirtualClock};
use std::collections::BTreeMap;
use std::sync::Arc;
use tulkun_core::churn::TopologyEvent;
use tulkun_core::dvm::DeviceVerifier;
use tulkun_core::event::{EventOutcome, RuntimeEvent, Substrate};
use tulkun_core::fault::FaultProfile;
use tulkun_core::intent::{IntentDelta, IntentId};
use tulkun_core::planner::{CountingPlan, NodeTask, PlanError};
use tulkun_core::spec::{Invariant, PacketSpace};
use tulkun_core::verify::Report;
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::DeviceId;
use tulkun_predicate::BackendKind;
use tulkun_telemetry::Telemetry;

pub use crate::runtime::{DeviceStats, LecCache, RunOutcome as SimResult};

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Switch model whose CPU factor scales measured host time.
    pub model: SwitchModel,
    /// Latency used when two communicating devices share no direct link
    /// (only possible for virtual constructions).
    pub fallback_latency_ns: u64,
    /// Build per-device verifiers concurrently (see
    /// [`EngineConfig::parallel_init`]).
    pub parallel_init: bool,
    /// Telemetry handle shared by every verifier and the driver loop
    /// (disabled by default: a no-op that takes no locks).
    pub telemetry: Arc<Telemetry>,
    /// Predicate backend for every verifier (see
    /// [`EngineConfig::backend`]).
    pub backend: BackendKind,
    /// Expected rule updates in the upcoming window, consumed by the
    /// `Auto` backend heuristic (see [`EngineConfig::update_rate_hint`]).
    pub update_rate_hint: f64,
    /// Build a verifier for every topology device so runtime intents
    /// can task any of them (see [`EngineConfig::all_devices`]).
    pub all_devices: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            model: SwitchModel::MELLANOX,
            fallback_latency_ns: 10_000,
            parallel_init: false,
            telemetry: Telemetry::disabled(),
            backend: BackendKind::Bdd,
            update_rate_hint: 0.0,
            all_devices: false,
        }
    }
}

impl From<SimConfig> for EngineConfig {
    fn from(cfg: SimConfig) -> EngineConfig {
        EngineConfig {
            model: cfg.model,
            fallback_latency_ns: cfg.fallback_latency_ns,
            parallel_init: cfg.parallel_init,
            telemetry: cfg.telemetry,
            backend: cfg.backend,
            update_rate_hint: cfg.update_rate_hint,
            all_devices: cfg.all_devices,
        }
    }
}

/// The simulator: a virtual-time instantiation of the runtime engine.
pub struct DvmSim {
    engine: Engine<LatencyTransport, VirtualClock>,
}

impl DvmSim {
    /// Builds a simulator over a network snapshot and a counting plan.
    /// Verifier construction (LEC building and initial counting) is
    /// timed as initialization; call [`DvmSim::burst`] to run it.
    pub fn new(net: &Network, plan: &CountingPlan, ps: &PacketSpace, cfg: SimConfig) -> DvmSim {
        let cache = LecCache::new();
        Self::new_cached(net, plan, ps, cfg, &cache)
    }

    /// Like [`DvmSim::new`], but shares a per-device LEC cache across
    /// simulators (one device builds its LEC table once for all
    /// invariants — the paper's §8 architecture). The cached build cost
    /// is still charged to init time on the first build.
    pub fn new_cached(
        net: &Network,
        plan: &CountingPlan,
        ps: &PacketSpace,
        cfg: SimConfig,
        lec_cache: &LecCache,
    ) -> DvmSim {
        let ecfg: EngineConfig = cfg.into();
        let transport = LatencyTransport::new(net.topology.clone(), ecfg.fallback_latency_ns);
        let clock = VirtualClock::new(ecfg.model);
        DvmSim {
            engine: Engine::new_cached(net, plan, ps, &ecfg, lec_cache, transport, clock),
        }
    }

    /// The burst phase: all FIBs arrive at t=0 (already ingested during
    /// construction); runs the initial counting to quiescence.
    pub fn burst(&mut self) -> SimResult {
        self.engine.burst()
    }

    /// One incremental rule update: arrives at its device "now"
    /// (relative clock reset to 0 so results are per-update times).
    pub fn incremental(&mut self, update: &RuleUpdate) -> SimResult {
        self.engine.incremental(update)
    }

    /// Applies a burst of rule updates as coalesced per-device batches
    /// (see [`crate::runtime::Engine::apply_batch`]).
    pub fn apply_batch(&mut self, updates: &[RuleUpdate]) -> SimResult {
        self.engine.apply_batch(updates)
    }

    /// A link failure/recovery event delivered to both endpoints at t=0.
    pub fn link_event(&mut self, a: DeviceId, b: DeviceId, up: bool) -> SimResult {
        self.engine.link_event(a, b, up)
    }

    /// Swaps every verifier to a fault-scene task view (after link-state
    /// flooding, §6) and recounts. `flood_ns` models the flooding delay
    /// added to the completion time.
    pub fn apply_scene(&mut self, tasks: &[NodeTask], flood_ns: u64) -> SimResult {
        self.engine.apply_scene(tasks, flood_ns)
    }

    /// Evaluates the invariant at the sources.
    pub fn report(&mut self) -> Report {
        self.engine.report()
    }

    /// Per-device overhead counters.
    pub fn device_stats(&self) -> &BTreeMap<DeviceId, DeviceStats> {
        &self.engine.stats().per_device
    }

    /// The full runtime observability surface (per-message samples,
    /// totals).
    pub fn stats(&self) -> &RuntimeStats {
        self.engine.stats()
    }

    /// Mutable stats access (the Fig. 15 harness drains the
    /// per-message samples through this).
    pub fn stats_mut(&mut self) -> &mut RuntimeStats {
        self.engine.stats_mut()
    }

    /// Crashes and restarts one device's verification agent and drives
    /// the recovery exchange (neighbor replays) to quiescence.
    pub fn crash_restart(&mut self, dev: DeviceId) -> SimResult {
        self.engine.crash_restart(dev)
    }

    /// Applies one live topology churn event (epoch fence + incremental
    /// re-plan + re-announcement) and runs re-convergence to
    /// quiescence. See [`crate::runtime::Engine::apply_topology_event`].
    pub fn apply_topology_event(
        &mut self,
        ev: &TopologyEvent,
        base: &tulkun_netmodel::topology::Topology,
        inv: &Invariant,
    ) -> Result<SimResult, PlanError> {
        self.engine.apply_topology_event(ev, base, inv)
    }

    /// Like [`DvmSim::apply_topology_event`], also returning the
    /// re-plan delta's `(total_nodes, reused_nodes)` (for the churn
    /// ablation bench and the CLI).
    pub fn apply_topology_event_with_delta(
        &mut self,
        ev: &TopologyEvent,
        base: &tulkun_netmodel::topology::Topology,
        inv: &Invariant,
    ) -> Result<(SimResult, usize, usize), PlanError> {
        self.engine.apply_topology_event_with_delta(ev, base, inv)
    }

    /// Stages a batch of rule updates (enqueued, not yet drained) so a
    /// churn event can land mid-flight; drain with
    /// [`DvmSim::run_staged`].
    pub fn stage_batch(&mut self, updates: &[RuleUpdate]) {
        self.engine.stage_batch(updates)
    }

    /// Drains staged and churn-induced traffic to quiescence.
    pub fn run_staged(&mut self) -> SimResult {
        self.engine.run_staged()
    }

    /// The current topology generation (0 until the first churn event).
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// Mutable access to one verifier (used by the replay harness).
    pub fn verifier_mut(&mut self, dev: DeviceId) -> Option<&mut DeviceVerifier> {
        self.engine.verifier_mut(dev)
    }

    /// The runtime intent store (read-only).
    pub fn intents(&self) -> &tulkun_core::intent::IntentStore {
        self.engine.intents()
    }

    /// Installs an invariant as a runtime intent and drives
    /// re-convergence (see [`crate::runtime::Engine::install_intent`]).
    pub fn install_intent(
        &mut self,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta, SimResult), PlanError> {
        self.engine.install_intent(name, inv)
    }

    /// [`DvmSim::install_intent`] under a caller-chosen id (replay).
    pub fn install_intent_as(
        &mut self,
        id: IntentId,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta, SimResult), PlanError> {
        self.engine.install_intent_as(id, name, inv)
    }

    /// Removes a live intent and drives re-convergence (see
    /// [`crate::runtime::Engine::remove_intent`]).
    pub fn remove_intent(&mut self, id: IntentId) -> Result<(IntentDelta, SimResult), PlanError> {
        self.engine.remove_intent(id)
    }
}

impl Substrate for DvmSim {
    fn apply_event(&mut self, ev: &RuntimeEvent) -> Result<EventOutcome, PlanError> {
        self.engine.apply_event(ev)
    }
}

/// The event simulator over a *faulty* management network: identical to
/// [`DvmSim`] except envelopes travel through a
/// [`FaultyTransport`]-decorated [`LatencyTransport`], so messages are
/// dropped, duplicated, reordered and delayed per a seeded
/// [`FaultProfile`] and recovered by the at-least-once reliability
/// layer. The Report converges to the same fixpoint as the perfect-
/// channel simulator; `stats().fault` records what it cost.
pub struct FaultyDvmSim {
    engine: Engine<FaultyTransport<LatencyTransport>, VirtualClock>,
}

impl FaultyDvmSim {
    /// Builds a fault-injecting simulator (see [`DvmSim::new`]).
    pub fn new(
        net: &Network,
        plan: &CountingPlan,
        ps: &PacketSpace,
        cfg: SimConfig,
        profile: FaultProfile,
    ) -> FaultyDvmSim {
        let cache = LecCache::new();
        Self::new_cached(net, plan, ps, cfg, profile, &cache)
    }

    /// Like [`FaultyDvmSim::new`] with a shared LEC cache.
    pub fn new_cached(
        net: &Network,
        plan: &CountingPlan,
        ps: &PacketSpace,
        cfg: SimConfig,
        profile: FaultProfile,
        lec_cache: &LecCache,
    ) -> FaultyDvmSim {
        let ecfg: EngineConfig = cfg.into();
        let transport = FaultyTransport::with_telemetry(
            LatencyTransport::new(net.topology.clone(), ecfg.fallback_latency_ns),
            profile,
            ecfg.telemetry.clone(),
        );
        let clock = VirtualClock::new(ecfg.model);
        FaultyDvmSim {
            engine: Engine::new_cached(net, plan, ps, &ecfg, lec_cache, transport, clock),
        }
    }

    /// The burst phase under faults (see [`DvmSim::burst`]).
    pub fn burst(&mut self) -> SimResult {
        self.engine.burst()
    }

    /// One incremental rule update under faults.
    pub fn incremental(&mut self, update: &RuleUpdate) -> SimResult {
        self.engine.incremental(update)
    }

    /// Applies a burst of rule updates as coalesced per-device batches,
    /// delivered over the faulty channel.
    pub fn apply_batch(&mut self, updates: &[RuleUpdate]) -> SimResult {
        self.engine.apply_batch(updates)
    }

    /// A link failure/recovery event delivered to both endpoints at t=0.
    pub fn link_event(&mut self, a: DeviceId, b: DeviceId, up: bool) -> SimResult {
        self.engine.link_event(a, b, up)
    }

    /// Crashes and restarts one device's verification agent and drives
    /// the recovery exchange — over the faulty channel — to quiescence.
    pub fn crash_restart(&mut self, dev: DeviceId) -> SimResult {
        self.engine.crash_restart(dev)
    }

    /// Evaluates the invariant at the sources.
    pub fn report(&mut self) -> Report {
        self.engine.report()
    }

    /// Applies one live topology churn event over the faulty channel:
    /// the epoch fence additionally wipes the reliability layer's
    /// in-flight state (windows, reorder buffers, delayed copies).
    pub fn apply_topology_event(
        &mut self,
        ev: &TopologyEvent,
        base: &tulkun_netmodel::topology::Topology,
        inv: &Invariant,
    ) -> Result<SimResult, PlanError> {
        self.engine.apply_topology_event(ev, base, inv)
    }

    /// Stages a batch of rule updates without draining them.
    pub fn stage_batch(&mut self, updates: &[RuleUpdate]) {
        self.engine.stage_batch(updates)
    }

    /// Drains staged and churn-induced traffic to quiescence.
    pub fn run_staged(&mut self) -> SimResult {
        self.engine.run_staged()
    }

    /// The current topology generation (0 until the first churn event).
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// The runtime observability surface; `stats().fault` holds the
    /// reliability-layer counters (drops, retransmits, acks, …).
    pub fn stats(&self) -> &RuntimeStats {
        self.engine.stats()
    }

    /// The runtime intent store (read-only).
    pub fn intents(&self) -> &tulkun_core::intent::IntentStore {
        self.engine.intents()
    }

    /// Installs an invariant as a runtime intent over the faulty
    /// channel: dropped/duplicated/reordered install-wave messages are
    /// recovered by the reliability layer and the report still
    /// converges to the clean-channel fixpoint.
    pub fn install_intent(
        &mut self,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta, SimResult), PlanError> {
        self.engine.install_intent(name, inv)
    }

    /// [`FaultyDvmSim::install_intent`] under a caller-chosen id.
    pub fn install_intent_as(
        &mut self,
        id: IntentId,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta, SimResult), PlanError> {
        self.engine.install_intent_as(id, name, inv)
    }

    /// Removes a live intent over the faulty channel.
    pub fn remove_intent(&mut self, id: IntentId) -> Result<(IntentDelta, SimResult), PlanError> {
        self.engine.remove_intent(id)
    }
}

impl Substrate for FaultyDvmSim {
    fn apply_event(&mut self, ev: &RuntimeEvent) -> Result<EventOutcome, PlanError> {
        self.engine.apply_event(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_core::planner::Planner;
    use tulkun_core::spec::table1;
    use tulkun_core::spec::PacketSpace;
    use tulkun_datasets::fig2a_network;
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};

    fn waypoint_sim() -> (tulkun_netmodel::Network, DvmSim) {
        let net = fig2a_network();
        let inv = tulkun_core::spec::Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress(["S"])
            .behavior(tulkun_core::spec::Behavior::exist(
                tulkun_core::count::CountExpr::ge(1),
                tulkun_core::spec::PathExpr::parse("S .* W .* D")
                    .unwrap()
                    .loop_free(),
            ))
            .build()
            .unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        let sim = DvmSim::new(
            &net,
            &cp,
            &plan.invariant.packet_space,
            SimConfig::default(),
        );
        (net, sim)
    }

    #[test]
    fn burst_matches_reference_semantics() {
        let (_, mut sim) = waypoint_sim();
        let r = sim.burst();
        assert!(r.messages > 0);
        assert!(r.completion_ns > 0);
        // Same verdict as the synchronous reference driver.
        let report = sim.report();
        assert!(!report.holds());
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn completion_includes_propagation_latency() {
        let (net, mut sim) = waypoint_sim();
        let r = sim.burst();
        // At least one message crossed a link, so completion exceeds one
        // link latency (1000 ns in fig2a).
        let min_lat = net
            .topology
            .links()
            .iter()
            .map(|l| l.latency_ns)
            .min()
            .unwrap();
        assert!(r.completion_ns >= min_lat);
    }

    #[test]
    fn incremental_update_converges_and_is_cheaper() {
        let (net, mut sim) = waypoint_sim();
        let burst = sim.burst();
        let b = net.topology.device("B").unwrap();
        let w = net.topology.device("W").unwrap();
        let update = RuleUpdate::Insert {
            device: b,
            rule: Rule {
                priority: 50,
                matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
                action: Action::fwd(w),
            },
        };
        let incr = sim.incremental(&update);
        assert!(sim.report().holds());
        assert!(incr.messages < burst.messages);
    }

    #[test]
    fn local_contract_counterpart_runs() {
        // Smoke-check the all-shortest-path invariant through the
        // counting path as well (sanity that deliver actions work).
        let net = fig2a_network();
        let inv = table1::reachability(PacketSpace::dst_prefix("10.0.0.0/23"), "S", "D").unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        let mut sim = DvmSim::new(
            &net,
            &cp,
            &plan.invariant.packet_space,
            SimConfig::default(),
        );
        sim.burst();
        assert!(sim.report().holds());
    }

    #[test]
    fn slower_switch_models_scale_completion() {
        // The same workload on the ARM (Centec) model must report a
        // longer simulated completion than on the x86 (Mellanox) model
        // whenever CPU time is a visible fraction of completion.
        let net = fig2a_network();
        let inv = table1::reachability(PacketSpace::dst_prefix("10.0.0.0/23"), "S", "D").unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        let total_cpu = |model: crate::models::SwitchModel| {
            let mut sim = DvmSim::new(
                &net,
                &cp,
                &plan.invariant.packet_space,
                SimConfig {
                    model,
                    ..Default::default()
                },
            );
            sim.burst();
            sim.device_stats()
                .values()
                .map(|s| s.init_ns + s.busy_ns)
                .sum::<u64>()
        };
        let fast = total_cpu(crate::models::SwitchModel::MELLANOX);
        let slow = total_cpu(crate::models::SwitchModel::CENTEC);
        // Wall-clock noise exists, but a 2.5x scale factor dominates it.
        assert!(
            slow > fast,
            "Centec ({slow}) must accumulate more CPU than Mellanox ({fast})"
        );
    }

    #[test]
    fn faulty_sim_report_matches_clean_sim() {
        let (net, mut clean) = waypoint_sim();
        clean.burst();
        let reference = clean.report().canonical_bytes();
        let inv = tulkun_core::spec::Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress(["S"])
            .behavior(tulkun_core::spec::Behavior::exist(
                tulkun_core::count::CountExpr::ge(1),
                tulkun_core::spec::PathExpr::parse("S .* W .* D")
                    .unwrap()
                    .loop_free(),
            ))
            .build()
            .unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        let mut faulty = FaultyDvmSim::new(
            &net,
            &cp,
            &inv.packet_space,
            SimConfig::default(),
            FaultProfile::loss(3, 0.10),
        );
        faulty.burst();
        assert_eq!(
            faulty.report().canonical_bytes(),
            reference,
            "10% loss must be invisible to the Report"
        );
        let f = faulty.stats().fault;
        assert!(f.drops > 0, "loss profile must drop something");
        assert!(f.retransmits >= f.drops);
        assert!(f.acks > 0);

        // A crash mid-run over the faulty channel also recovers.
        let w = net.topology.device("W").unwrap();
        faulty.crash_restart(w);
        assert_eq!(faulty.report().canonical_bytes(), reference);
        assert_eq!(faulty.stats().crashes_recovered, 1);
    }

    #[test]
    fn churn_under_loss_matches_clean_sim() {
        // Topology churn over a lossy channel: the epoch fence wipes
        // the reliability layer's in-flight state, and re-convergence
        // must still reach the clean substrate's exact report.
        let (net, mut clean) = waypoint_sim();
        clean.burst();
        let inv = tulkun_core::spec::Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress(["S"])
            .behavior(tulkun_core::spec::Behavior::exist(
                tulkun_core::count::CountExpr::ge(1),
                tulkun_core::spec::PathExpr::parse("S .* W .* D")
                    .unwrap()
                    .loop_free(),
            ))
            .build()
            .unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        let mut faulty = FaultyDvmSim::new(
            &net,
            &cp,
            &inv.packet_space,
            SimConfig::default(),
            FaultProfile::loss(9, 0.10),
        );
        faulty.burst();
        let a = net.topology.device("A").unwrap();
        let b = net.topology.device("B").unwrap();
        let w = net.topology.device("W").unwrap();
        use tulkun_core::churn::TopologyEvent as Ev;
        for ev in [Ev::LinkDown(a, b), Ev::DeviceDown(b), Ev::DeviceUp(b)] {
            clean
                .apply_topology_event(&ev, &net.topology, &inv)
                .unwrap();
            faulty
                .apply_topology_event(&ev, &net.topology, &inv)
                .unwrap();
            assert_eq!(
                faulty.report().canonical_bytes(),
                clean.report().canonical_bytes(),
                "churn {ev:?} must converge identically under 10% loss"
            );
        }
        assert_eq!(clean.epoch(), 3);
        assert_eq!(faulty.epoch(), 3);
        // A crash_restart composed after churn still reconverges.
        clean.crash_restart(w);
        faulty.crash_restart(w);
        assert_eq!(
            faulty.report().canonical_bytes(),
            clean.report().canonical_bytes()
        );
    }

    #[test]
    fn device_stats_are_collected() {
        let (_, mut sim) = waypoint_sim();
        sim.burst();
        let stats = sim.device_stats();
        assert!(!stats.is_empty());
        assert!(stats.values().any(|s| s.messages > 0));
        assert!(stats.values().all(|s| s.bdd_nodes > 2));
        // Per-message samples are drainable for the Fig. 15 harness.
        let total_msgs: u64 = sim.device_stats().values().map(|s| s.messages).sum();
        let samples = sim.stats_mut().drain_msg_samples();
        assert_eq!(samples.len() as u64, total_msgs);
        assert!(sim.stats().msg_ns_samples.is_empty());
    }
}
