//! The discrete-event simulator for distributed counting plans.
//!
//! Each device is a sequential processor: an event arriving at time `t`
//! starts processing at `max(t, device_free)`, runs for its *measured*
//! host CPU time scaled by the switch model, and emits its messages at
//! completion. Messages between neighboring devices add the link's
//! propagation latency. Verification time is the instant the system
//! quiesces — the same definition as §9.3.1 ("from the arrival of rule
//! updates at devices to the time when all invariants are verified,
//! including the propagation delays").

use crate::models::SwitchModel;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::time::Instant;
use tulkun_core::dvm::{DeviceVerifier, Envelope, VerifierConfig};
use tulkun_core::planner::{CountingPlan, NodeTask};
use tulkun_core::spec::PacketSpace;
use tulkun_core::verify::{self, Report};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::DeviceId;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Switch model whose CPU factor scales measured host time.
    pub model: SwitchModel,
    /// Latency used when two communicating devices share no direct link
    /// (only possible for virtual constructions).
    pub fallback_latency_ns: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            model: SwitchModel::MELLANOX,
            fallback_latency_ns: 10_000,
        }
    }
}

/// Per-device counters for the §9.4 overhead figures.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceStats {
    /// Scaled CPU time spent initializing (LEC + initial counting).
    pub init_ns: u64,
    /// Scaled CPU time spent processing DVM messages.
    pub busy_ns: u64,
    /// DVM messages processed.
    pub messages: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// BDD nodes allocated (memory proxy).
    pub bdd_nodes: usize,
    /// Scaled per-message processing times (ns) — drained by the Fig. 15
    /// harness.
    pub max_msg_ns: u64,
}

/// A shared per-device LEC-table cache (exported predicates + actions),
/// valid as long as the device's FIB is unchanged.
pub type LecCache = BTreeMap<
    DeviceId,
    Vec<(
        tulkun_bdd::serial::PortablePred,
        tulkun_netmodel::fib::Action,
    )>,
>;

/// The outcome of one simulated verification round.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    /// Simulated completion (quiescence) time in ns.
    pub completion_ns: u64,
    /// Messages delivered.
    pub messages: usize,
    /// Total bytes on the wire.
    pub bytes: u64,
}

/// The simulator: owns the verifiers, the clock, and the event queue.
pub struct DvmSim {
    cfg: SimConfig,
    plan: CountingPlan,
    topo: tulkun_netmodel::Topology,
    verifiers: BTreeMap<DeviceId, DeviceVerifier>,
    /// Device busy-until times.
    free_at: BTreeMap<DeviceId, u64>,
    /// Event queue: (arrival time, sequence, envelope).
    queue: BinaryHeap<Reverse<(u64, u64, EnvelopeOrd)>>,
    seq: u64,
    clock: u64,
    stats: BTreeMap<DeviceId, DeviceStats>,
    /// Per-message scaled processing times (ns), for Fig. 15.
    pub msg_times_ns: Vec<u64>,
}

/// Envelope wrapper ordered by sequence only (BinaryHeap needs Ord).
struct EnvelopeOrd(Envelope);

impl PartialEq for EnvelopeOrd {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for EnvelopeOrd {}
impl PartialOrd for EnvelopeOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EnvelopeOrd {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl DvmSim {
    /// Builds a simulator over a network snapshot and a counting plan.
    /// Verifier construction (LEC building and initial counting) is
    /// timed as initialization; call [`DvmSim::burst`] to run it.
    pub fn new(net: &Network, plan: &CountingPlan, ps: &PacketSpace, cfg: SimConfig) -> DvmSim {
        let mut cache = LecCache::new();
        Self::new_cached(net, plan, ps, cfg, &mut cache)
    }

    /// Like [`DvmSim::new`], but shares a per-device LEC cache across
    /// simulators (one device builds its LEC table once for all
    /// invariants — the paper's §8 architecture). The cached build cost
    /// is still charged to init time on the first build.
    pub fn new_cached(
        net: &Network,
        plan: &CountingPlan,
        ps: &PacketSpace,
        cfg: SimConfig,
        lec_cache: &mut LecCache,
    ) -> DvmSim {
        let packet_space = verify::compile_packet_space(&net.layout, ps);
        let vcfg = VerifierConfig {
            n_exprs: plan.exprs.len(),
            track_escapes: plan.track_escapes,
            reduce: plan.reduce,
            dest_mode: Default::default(),
        };
        let mut by_dev: BTreeMap<DeviceId, Vec<NodeTask>> = BTreeMap::new();
        for t in &plan.tasks {
            by_dev.entry(t.dev).or_default().push(t.clone());
        }
        let mut sim = DvmSim {
            cfg,
            plan: plan.clone(),
            topo: net.topology.clone(),
            verifiers: BTreeMap::new(),
            free_at: BTreeMap::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            clock: 0,
            stats: BTreeMap::new(),
            msg_times_ns: Vec::new(),
        };
        for (dev, tasks) in by_dev {
            let start = Instant::now();
            let cached = lec_cache.get(&dev);
            let mut v = DeviceVerifier::new_with_lecs(
                dev,
                net.layout,
                net.fib(dev).clone(),
                tasks,
                &packet_space,
                vcfg.clone(),
                cached.map(Vec::as_slice),
            );
            if cached.is_none() {
                lec_cache.insert(dev, v.export_lecs());
            }
            let init_out = v.init();
            let elapsed = sim.cfg.model.scale_ns(start.elapsed().as_nanos() as u64);
            let st = sim.stats.entry(dev).or_default();
            st.init_ns = elapsed;
            st.bdd_nodes = v.bdd_nodes();
            sim.free_at.insert(dev, elapsed);
            for env in init_out {
                sim.send(dev, elapsed, env);
            }
            sim.verifiers.insert(dev, v);
        }
        sim
    }

    fn latency(&self, a: DeviceId, b: DeviceId) -> u64 {
        if a == b {
            return 0;
        }
        match self.topo.link_between(a, b) {
            Some(l) => self.topo.link(l).latency_ns,
            None => self.cfg.fallback_latency_ns,
        }
    }

    fn send(&mut self, from: DeviceId, at: u64, env: Envelope) {
        let arrival = at + self.latency(from, env.to);
        self.seq += 1;
        self.queue
            .push(Reverse((arrival, self.seq, EnvelopeOrd(env))));
    }

    /// Runs the queue dry. Returns the quiescence result.
    fn run(&mut self) -> SimResult {
        let mut result = SimResult::default();
        let mut last_finish = self.clock;
        while let Some(Reverse((arrival, _, EnvelopeOrd(env)))) = self.queue.pop() {
            let dev = env.to;
            let Some(v) = self.verifiers.get_mut(&dev) else {
                continue;
            };
            let begin = arrival.max(*self.free_at.get(&dev).unwrap_or(&0));
            let wall = Instant::now();
            let bytes_before = v.stats.bytes_sent;
            let out = v.handle(&env);
            let host_ns = wall.elapsed().as_nanos() as u64;
            let cpu = self.cfg.model.scale_ns(host_ns);
            let finish = begin + cpu;
            self.free_at.insert(dev, finish);
            last_finish = last_finish.max(finish);
            result.messages += 1;
            result.bytes += env.wire_bytes() as u64;
            self.msg_times_ns.push(cpu);
            {
                let st = self.stats.entry(dev).or_default();
                st.busy_ns += cpu;
                st.messages += 1;
                st.max_msg_ns = st.max_msg_ns.max(cpu);
                st.bytes_sent += self.verifiers[&dev].stats.bytes_sent - bytes_before;
                st.bdd_nodes = self.verifiers[&dev].bdd_nodes();
            }
            for env in out {
                self.send(dev, finish, env);
            }
        }
        self.clock = last_finish;
        result.completion_ns = last_finish;
        result
    }

    /// The burst phase: all FIBs arrive at t=0 (already ingested during
    /// construction); runs the initial counting to quiescence.
    pub fn burst(&mut self) -> SimResult {
        self.run()
    }

    /// One incremental rule update: arrives at its device "now"
    /// (relative clock reset to 0 so results are per-update times).
    pub fn incremental(&mut self, update: &RuleUpdate) -> SimResult {
        self.reset_clock();
        let dev = update.device();
        let Some(v) = self.verifiers.get_mut(&dev) else {
            return SimResult::default();
        };
        let wall = Instant::now();
        let out = v.handle_fib_update(update);
        let cpu = self.cfg.model.scale_ns(wall.elapsed().as_nanos() as u64);
        self.free_at.insert(dev, cpu);
        {
            let st = self.stats.entry(dev).or_default();
            st.busy_ns += cpu;
        }
        for env in out {
            self.send(dev, cpu, env);
        }
        let mut r = self.run();
        r.completion_ns = r.completion_ns.max(cpu);
        r
    }

    /// A link failure/recovery event delivered to both endpoints at t=0.
    pub fn link_event(&mut self, a: DeviceId, b: DeviceId, up: bool) -> SimResult {
        self.reset_clock();
        for (x, y) in [(a, b), (b, a)] {
            let Some(v) = self.verifiers.get_mut(&x) else {
                continue;
            };
            let wall = Instant::now();
            let out = v.handle_link_event(y, up);
            let cpu = self.cfg.model.scale_ns(wall.elapsed().as_nanos() as u64);
            self.free_at.insert(x, cpu);
            for env in out {
                self.send(x, cpu, env);
            }
        }
        self.run()
    }

    /// Swaps every verifier to a fault-scene task view (after link-state
    /// flooding, §6) and recounts. `flood_ns` models the flooding delay
    /// added to the completion time.
    pub fn apply_scene(&mut self, tasks: &[NodeTask], flood_ns: u64) -> SimResult {
        self.reset_clock();
        let mut by_dev: BTreeMap<DeviceId, Vec<NodeTask>> = BTreeMap::new();
        for t in tasks {
            by_dev.entry(t.dev).or_default().push(t.clone());
        }
        for (dev, tasks) in by_dev {
            let Some(v) = self.verifiers.get_mut(&dev) else {
                continue;
            };
            let wall = Instant::now();
            let out = v.set_tasks(tasks);
            let cpu = self.cfg.model.scale_ns(wall.elapsed().as_nanos() as u64);
            let begin = flood_ns + cpu;
            self.free_at.insert(dev, begin);
            for env in out {
                self.send(dev, begin, env);
            }
        }
        let mut r = self.run();
        r.completion_ns = r.completion_ns.max(flood_ns);
        r
    }

    fn reset_clock(&mut self) {
        self.clock = 0;
        for t in self.free_at.values_mut() {
            *t = 0;
        }
    }

    /// Evaluates the invariant at the sources.
    pub fn report(&self) -> Report {
        verify::evaluate_sources(&self.plan, |dev, node| {
            self.verifiers
                .get(&dev)
                .map(|v| v.node_result(node))
                .unwrap_or_default()
        })
    }

    /// Per-device overhead counters.
    pub fn device_stats(&self) -> &BTreeMap<DeviceId, DeviceStats> {
        &self.stats
    }

    /// Mutable access to one verifier (used by the replay harness).
    pub fn verifier_mut(&mut self, dev: DeviceId) -> Option<&mut DeviceVerifier> {
        self.verifiers.get_mut(&dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_core::planner::Planner;
    use tulkun_core::spec::table1;
    use tulkun_core::spec::PacketSpace;
    use tulkun_datasets::fig2a_network;
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};

    fn waypoint_sim() -> (tulkun_netmodel::Network, DvmSim) {
        let net = fig2a_network();
        let inv = tulkun_core::spec::Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress(["S"])
            .behavior(tulkun_core::spec::Behavior::exist(
                tulkun_core::count::CountExpr::ge(1),
                tulkun_core::spec::PathExpr::parse("S .* W .* D")
                    .unwrap()
                    .loop_free(),
            ))
            .build()
            .unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        let sim = DvmSim::new(
            &net,
            &cp,
            &plan.invariant.packet_space,
            SimConfig::default(),
        );
        (net, sim)
    }

    #[test]
    fn burst_matches_reference_semantics() {
        let (_, mut sim) = waypoint_sim();
        let r = sim.burst();
        assert!(r.messages > 0);
        assert!(r.completion_ns > 0);
        // Same verdict as the synchronous reference driver.
        let report = sim.report();
        assert!(!report.holds());
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn completion_includes_propagation_latency() {
        let (net, mut sim) = waypoint_sim();
        let r = sim.burst();
        // At least one message crossed a link, so completion exceeds one
        // link latency (1000 ns in fig2a).
        let min_lat = net
            .topology
            .links()
            .iter()
            .map(|l| l.latency_ns)
            .min()
            .unwrap();
        assert!(r.completion_ns >= min_lat);
    }

    #[test]
    fn incremental_update_converges_and_is_cheaper() {
        let (net, mut sim) = waypoint_sim();
        let burst = sim.burst();
        let b = net.topology.device("B").unwrap();
        let w = net.topology.device("W").unwrap();
        let update = RuleUpdate::Insert {
            device: b,
            rule: Rule {
                priority: 50,
                matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
                action: Action::fwd(w),
            },
        };
        let incr = sim.incremental(&update);
        assert!(sim.report().holds());
        assert!(incr.messages < burst.messages);
    }

    #[test]
    fn local_contract_counterpart_runs() {
        // Smoke-check the all-shortest-path invariant through the
        // counting path as well (sanity that deliver actions work).
        let net = fig2a_network();
        let inv = table1::reachability(PacketSpace::dst_prefix("10.0.0.0/23"), "S", "D").unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        let mut sim = DvmSim::new(
            &net,
            &cp,
            &plan.invariant.packet_space,
            SimConfig::default(),
        );
        sim.burst();
        assert!(sim.report().holds());
    }

    #[test]
    fn slower_switch_models_scale_completion() {
        // The same workload on the ARM (Centec) model must report a
        // longer simulated completion than on the x86 (Mellanox) model
        // whenever CPU time is a visible fraction of completion.
        let net = fig2a_network();
        let inv = table1::reachability(PacketSpace::dst_prefix("10.0.0.0/23"), "S", "D").unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        let total_cpu = |model: crate::models::SwitchModel| {
            let mut sim = DvmSim::new(
                &net,
                &cp,
                &plan.invariant.packet_space,
                SimConfig {
                    model,
                    ..Default::default()
                },
            );
            sim.burst();
            sim.device_stats()
                .values()
                .map(|s| s.init_ns + s.busy_ns)
                .sum::<u64>()
        };
        let fast = total_cpu(crate::models::SwitchModel::MELLANOX);
        let slow = total_cpu(crate::models::SwitchModel::CENTEC);
        // Wall-clock noise exists, but a 2.5x scale factor dominates it.
        assert!(
            slow > fast,
            "Centec ({slow}) must accumulate more CPU than Mellanox ({fast})"
        );
    }

    #[test]
    fn device_stats_are_collected() {
        let (_, mut sim) = waypoint_sim();
        sim.burst();
        let stats = sim.device_stats();
        assert!(!stats.is_empty());
        assert!(stats.values().any(|s| s.messages > 0));
        assert!(stats.values().all(|s| s.bdd_nodes > 2));
    }
}
