//! Fault injection for the management network.
//!
//! The paper's prototype runs DVM over TCP, so its correctness under a
//! lossy management network is inherited from the kernel. This module
//! makes that assumption testable: [`FaultyTransport`] decorates any
//! [`Transport`] with seeded drops, duplicates, reorders and delays
//! (per a [`FaultProfile`]) and pairs the damage with the at-least-once
//! machinery of [`tulkun_core::dvm::reliable`] — sequence numbers,
//! acks, timeout-driven retransmission with exponential backoff, and
//! in-order duplicate-suppressed release at the receiver.
//!
//! The decorated transport still satisfies the [`Transport`] contract
//! the engine's quiescence rule needs: `recv` returns `None` only when
//! nothing is in flight *and* every data envelope has been delivered
//! exactly once and acknowledged. Termination under arbitrary loss
//! rates is guaranteed by `FaultProfile::force_after_attempts`: after
//! that many retransmissions an envelope bypasses the injector, and
//! re-acks prompted by suppressed duplicates always bypass it.
//!
//! Everything is driven by one seeded ChaCha stream, so a run under
//! faults is exactly reproducible — the property the `fault-matrix` CI
//! stage builds on.

use crate::runtime::Transport;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;
use tulkun_core::dvm::reliable::{Accepted, ChannelKey, ReceiverLedger, SenderWindow};
use tulkun_core::dvm::{Envelope, Payload};
use tulkun_core::fault::{FaultProfile, FaultStats};
use tulkun_netmodel::{DeviceId, Topology};
use tulkun_telemetry::{JournalKind, Telemetry};

/// A [`Transport`] decorator that injects seeded message faults and
/// recovers from them with at-least-once delivery.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    profile: FaultProfile,
    rng: ChaCha8Rng,
    sender: SenderWindow,
    receiver: ReceiverLedger,
    /// In-order envelopes released by the ledger, awaiting delivery.
    ready: VecDeque<(u64, Envelope)>,
    /// Copies stashed by reorder injection; flushed behind the next
    /// send (or at the next idle point).
    held: Vec<(u64, Envelope)>,
    /// Sends parked by window backpressure, still un-sequenced; they
    /// re-enter the sender window in order as acks free capacity.
    backlog: VecDeque<(DeviceId, Envelope)>,
    stats: FaultStats,
    /// Latest substrate time observed (send or arrival).
    now: u64,
    /// Current fence generation (updated by `epoch_fence`), stamped
    /// onto journal entries.
    cur_epoch: u64,
    /// Telemetry handle: injected faults are recorded as instant
    /// events (`fault.*`, substrate time in `aux`); disabled by
    /// default.
    tel: Arc<Telemetry>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Decorates `inner` with the faults of `profile`.
    pub fn new(inner: T, profile: FaultProfile) -> FaultyTransport<T> {
        Self::with_telemetry(inner, profile, Telemetry::disabled())
    }

    /// Like [`FaultyTransport::new`], recording injected faults and
    /// reliability-layer events into `tel`.
    pub fn with_telemetry(
        inner: T,
        profile: FaultProfile,
        tel: Arc<Telemetry>,
    ) -> FaultyTransport<T> {
        let mut sender = SenderWindow::new();
        let mut receiver = ReceiverLedger::new();
        sender.set_telemetry(tel.clone());
        receiver.set_telemetry(tel.clone());
        FaultyTransport {
            inner,
            profile,
            rng: ChaCha8Rng::seed_from_u64(profile.seed),
            sender,
            receiver,
            ready: VecDeque::new(),
            held: Vec::new(),
            backlog: VecDeque::new(),
            stats: FaultStats::default(),
            now: 0,
            cur_epoch: 0,
            tel,
        }
    }

    /// Like [`FaultyTransport::new`], with an explicit per-channel cap
    /// on both the retransmission window and the reorder buffer
    /// (exercises backpressure; the default cap is
    /// [`tulkun_core::dvm::reliable::DEFAULT_CHANNEL_CAP`]).
    pub fn with_channel_cap(inner: T, profile: FaultProfile, cap: usize) -> FaultyTransport<T> {
        let mut t = Self::new(inner, profile);
        t.sender = SenderWindow::with_cap(cap);
        t.receiver = ReceiverLedger::with_cap(cap);
        t.sender.set_telemetry(t.tel.clone());
        t.receiver.set_telemetry(t.tel.clone());
        t
    }

    /// The active fault profile.
    pub fn profile(&self) -> FaultProfile {
        self.profile
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Bernoulli roll that consumes no randomness at rate zero, so a
    /// quiet profile leaves the ChaCha stream untouched.
    fn roll(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else {
            self.rng.gen_bool(p.min(1.0))
        }
    }

    /// Pushes one (possibly duplicated/delayed/reordered) wire copy of
    /// a sequenced envelope toward the inner transport.
    fn inject_copies(&mut self, from: DeviceId, at: u64, env: &Envelope) {
        let copies = if self.roll(self.profile.dup_rate) {
            self.stats.dups += 1;
            self.fault_event(from, "fault.dup", env.trace, at);
            2
        } else {
            1
        };
        for _ in 0..copies {
            let mut t = at;
            if self.roll(self.profile.delay_rate) {
                self.stats.delays += 1;
                t += self.rng.gen_range(0..=self.profile.max_delay_ns);
                self.fault_event(from, "fault.delay", env.trace, t);
            }
            if self.roll(self.profile.reorder_rate) {
                self.stats.reorders += 1;
                self.fault_event(from, "fault.reorder", env.trace, t);
                self.held.push((t, env.clone()));
            } else {
                self.inner.send(from, t, env.clone());
            }
        }
    }

    /// Records one injected fault as an instant event (substrate time
    /// in `aux`) and a flight-recorder entry; a single branch per sink
    /// when telemetry is disabled.
    fn fault_event(&self, dev: DeviceId, name: &'static str, trace: u64, at: u64) {
        if self.tel.is_enabled() {
            self.tel
                .span_aux(dev, name, "fault", self.tel.host_tick(), 0, trace, at);
        }
        self.tel.journal(
            JournalKind::FaultInjected,
            dev,
            self.cur_epoch,
            trace,
            None,
            || name.to_string(),
        );
    }

    /// Emits an ack for `env` back to its sender, subject (unless
    /// `forced`) to the same drop probability as data.
    fn send_ack(&mut self, arrival: u64, env: &Envelope, forced: bool) {
        if !forced && self.roll(self.profile.drop_rate) {
            self.stats.ack_drops += 1;
            self.fault_event(env.to, "fault.ack_drop", env.trace, arrival);
            return;
        }
        let ack = Envelope::data(env.to, env.from, Payload::Ack { of: env.seq });
        self.stats.acks += 1;
        self.stats.ack_bytes += ack.wire_bytes() as u64;
        self.inner.send(env.to, arrival, ack);
    }

    /// Flushes reorder-stashed copies into the inner transport.
    fn flush_held(&mut self) -> bool {
        if self.held.is_empty() {
            return false;
        }
        for (t, env) in std::mem::take(&mut self.held) {
            let from = env.from;
            self.inner.send(from, t, env);
        }
        true
    }

    /// Sequences one envelope into the sender window and exposes it to
    /// the injector (or counts a drop). A full window gives the
    /// (untouched) envelope back for parking.
    fn launch(&mut self, from: DeviceId, at: u64, mut env: Envelope) -> Result<(), Envelope> {
        if self
            .sender
            .assign(&mut env, at, self.profile.rto_ns)
            .is_err()
        {
            return Err(env);
        }
        if self.roll(self.profile.drop_rate) {
            self.stats.drops += 1;
            self.fault_event(from, "fault.drop", env.trace, at);
        } else {
            self.inject_copies(from, at, &env);
        }
        Ok(())
    }

    /// Re-attempts parked sends as window capacity frees up, preserving
    /// per-channel order (a channel that refuses again blocks its later
    /// entries but not other channels').
    fn drain_backlog(&mut self) -> bool {
        if self.backlog.is_empty() {
            return false;
        }
        let mut blocked: BTreeSet<ChannelKey> = BTreeSet::new();
        let pending = std::mem::take(&mut self.backlog);
        let mut launched = false;
        for (from, env) in pending {
            let ch = (env.from, env.to);
            if blocked.contains(&ch) {
                self.backlog.push_back((from, env));
                continue;
            }
            let at = self.now;
            match self.launch(from, at, env) {
                Ok(()) => launched = true,
                Err(env) => {
                    blocked.insert(ch);
                    self.backlog.push_back((from, env));
                }
            }
        }
        launched
    }

    /// Retransmits the unacked envelope whose timer fires next.
    /// Retransmissions keep passing through the injector until the
    /// forcing cap, after which they bypass it — the termination bound.
    fn retransmit_due(&mut self) -> bool {
        let Some((ch, seq)) = self.sender.earliest_due() else {
            return false;
        };
        let fire = self
            .sender
            .deadline_of(ch, seq)
            .unwrap_or(self.now)
            .max(self.now);
        self.now = fire;
        let Some((env, attempts)) = self.sender.bump(
            ch,
            seq,
            fire,
            self.profile.rto_ns,
            self.profile.max_backoff_exp,
        ) else {
            return false;
        };
        self.stats.retransmits += 1;
        self.stats.retransmit_bytes += env.wire_bytes() as u64;
        let from = env.from;
        self.tel.journal(
            JournalKind::Retransmit,
            from,
            self.cur_epoch,
            env.trace,
            None,
            || format!("retransmit #{attempts} d{}->d{}", env.from.0, env.to.0),
        );
        if attempts >= self.profile.force_after_attempts {
            self.stats.forced += 1;
            self.fault_event(from, "fault.forced", env.trace, fire);
            self.inner.send(from, fire, env);
        } else {
            self.inject_copies(from, fire, &env);
        }
        true
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    /// Sequences the envelope, registers it for retransmission, then
    /// exposes it to the injector. A stash from an earlier reorder roll
    /// is flushed *behind* this send, producing a genuine inversion.
    fn send(&mut self, from: DeviceId, at: u64, env: Envelope) {
        self.now = self.now.max(at);
        let stash = std::mem::take(&mut self.held);
        // Per-channel FIFO: if earlier sends on this channel are parked,
        // this one parks behind them instead of jumping the queue.
        let ch = (env.from, env.to);
        let parked_ahead = self.backlog.iter().any(|(_, e)| (e.from, e.to) == ch);
        let refused = if parked_ahead {
            Some(env)
        } else {
            self.launch(from, at, env).err()
        };
        if let Some(env) = refused {
            self.stats.backpressure += 1;
            self.fault_event(from, "fault.backpressure", env.trace, at);
            self.backlog.push_back((from, env));
        }
        for (t, held) in stash {
            let hfrom = held.from;
            self.inner.send(hfrom, t, held);
        }
    }

    /// Delivers the next in-order data envelope; acks, duplicates and
    /// retransmissions are consumed here and never reach the engine.
    /// Returns `None` only at true quiescence: inner transport dry, no
    /// stashed copies, every data envelope acknowledged.
    fn recv(&mut self) -> Option<(u64, Envelope)> {
        loop {
            if let Some(ready) = self.ready.pop_front() {
                return Some(ready);
            }
            match self.inner.recv() {
                Some((t, env)) => {
                    self.now = self.now.max(t);
                    if let Payload::Ack { of } = env.payload {
                        // An ack from `env.from` acknowledges data we
                        // sent on the (env.to, env.from) channel.
                        self.sender.ack((env.to, env.from), of);
                        // Freed window capacity re-admits parked sends.
                        self.drain_backlog();
                        continue;
                    }
                    match self.receiver.accept(t, env.clone()) {
                        Ok(Accepted::Ready(released)) => {
                            self.send_ack(t, &env, false);
                            self.ready.extend(released);
                        }
                        Ok(Accepted::Buffered) => {
                            self.send_ack(t, &env, false);
                        }
                        Ok(Accepted::Duplicate) => {
                            // The sender is retransmitting: our ack was
                            // lost. Re-ack reliably so it can stop.
                            self.stats.dup_suppressed += 1;
                            self.send_ack(t, &env, true);
                        }
                        Err(_) => {
                            // Reorder buffer at cap: refuse *without*
                            // acking — backpressure, not loss. The
                            // sender's retransmission redelivers once
                            // the gap fills and the buffer drains.
                            self.stats.backpressure += 1;
                            self.fault_event(env.to, "fault.backpressure", env.trace, t);
                        }
                    }
                }
                None => {
                    if self.flush_held() {
                        continue;
                    }
                    if self.drain_backlog() {
                        continue;
                    }
                    if self.retransmit_due() {
                        continue;
                    }
                    debug_assert!(self.sender.is_empty(), "quiescent with unacked data");
                    debug_assert!(self.backlog.is_empty(), "quiescent with parked sends");
                    return None;
                }
            }
        }
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        Some(self.stats)
    }

    /// A topology-epoch bump supersedes *everything* in flight: data,
    /// duplicates, delayed copies, stashed reorders, parked sends and
    /// acks alike are dropped, and both reliability endpoints restart
    /// (sequences from 1, empty windows). Coherent because the engine
    /// fences before any new-epoch send; re-announcement repairs the
    /// state the dropped messages carried.
    fn epoch_fence(&mut self, epoch: u64) {
        self.cur_epoch = epoch;
        self.ready.clear();
        self.held.clear();
        self.backlog.clear();
        self.sender.reset();
        self.receiver.reset();
        self.inner.epoch_fence(epoch);
    }

    /// Clears every pending envelope addressed to a crash-restarted
    /// device — released-but-undelivered, reorder-stashed, parked and
    /// in-flight copies (including delayed duplicates) — plus stale
    /// acks it originated, and restarts the reliability channels into
    /// it. Neighbor replays rebuild the dropped content; without this
    /// purge a delayed pre-crash copy could land on the fresh state.
    fn purge_for_restart(&mut self, dev: DeviceId) {
        self.ready.retain(|(_, e)| e.to != dev);
        self.held.retain(|(_, e)| e.to != dev);
        self.backlog.retain(|(_, e)| e.to != dev);
        self.inner.purge_for_restart(dev);
        self.sender.reset_channels_into(dev);
        self.receiver.reset_channels_into(dev);
    }

    fn set_topology(&mut self, topo: &Topology) {
        self.inner.set_topology(topo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::FifoTransport;
    use tulkun_core::dpvnet::NodeId;
    use tulkun_core::dvm::EdgeRef;

    fn data(from: u32, to: u32) -> Envelope {
        let m = tulkun_bdd::BddManager::new(1);
        Envelope::data(
            DeviceId(from),
            DeviceId(to),
            Payload::Subscribe {
                edge: EdgeRef {
                    up: NodeId(0),
                    down: NodeId(1),
                },
                space: tulkun_bdd::serial::export(&m, m.verum()),
            },
        )
    }

    /// Drains every deliverable envelope, asserting termination.
    fn drain<T: Transport>(t: &mut FaultyTransport<T>) -> Vec<Envelope> {
        let mut out = Vec::new();
        for _ in 0..100_000 {
            match t.recv() {
                Some((_, env)) => out.push(env),
                None => return out,
            }
        }
        panic!("transport did not quiesce");
    }

    #[test]
    fn quiet_profile_is_transparent_fifo() {
        let mut t = FaultyTransport::new(FifoTransport::default(), FaultProfile::none(1));
        for _ in 0..5 {
            t.send(DeviceId(1), 0, data(1, 2));
        }
        let got = drain(&mut t);
        assert_eq!(got.len(), 5);
        assert_eq!(
            got.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        let st = t.stats();
        assert_eq!(st.drops + st.dups + st.reorders + st.delays, 0);
        assert_eq!(st.retransmits, 0);
    }

    #[test]
    fn heavy_loss_still_delivers_everything_in_order() {
        let mut t = FaultyTransport::new(FifoTransport::default(), FaultProfile::loss(42, 0.5));
        let n = 200;
        for _ in 0..n {
            t.send(DeviceId(1), 0, data(1, 2));
        }
        let got = drain(&mut t);
        assert_eq!(got.len(), n);
        assert_eq!(
            got.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (1..=n as u64).collect::<Vec<_>>()
        );
        let st = t.stats();
        assert!(st.drops > 0, "50% loss must drop something");
        assert!(st.retransmits >= st.drops, "every drop needs a retransmit");
        assert!(t.fault_stats().is_some());
    }

    #[test]
    fn chaos_profile_delivers_exactly_once_per_channel_in_order() {
        let mut t = FaultyTransport::new(FifoTransport::default(), FaultProfile::chaos(7));
        let n = 100;
        for i in 0..n {
            t.send(DeviceId(1), i, data(1, 2));
            t.send(DeviceId(3), i, data(3, 2));
        }
        let got = drain(&mut t);
        assert_eq!(got.len(), 2 * n as usize);
        for from in [1u32, 3] {
            let seqs: Vec<u64> = got
                .iter()
                .filter(|e| e.from == DeviceId(from))
                .map(|e| e.seq)
                .collect();
            assert_eq!(seqs, (1..=n).collect::<Vec<_>>(), "channel {from} order");
        }
        let st = t.stats();
        assert!(st.dups + st.reorders + st.delays > 0, "chaos must act");
    }

    #[test]
    fn window_cap_parks_sends_then_releases_in_order() {
        let mut t =
            FaultyTransport::with_channel_cap(FifoTransport::default(), FaultProfile::none(1), 2);
        for _ in 0..5 {
            t.send(DeviceId(1), 0, data(1, 2));
        }
        // Only the window's worth launched; the rest parked under
        // backpressure rather than being dropped or panicking.
        assert!(t.stats().backpressure >= 3, "3 of 5 sends must park");
        let got = drain(&mut t);
        assert_eq!(got.len(), 5, "parked sends drain as acks free capacity");
        assert_eq!(
            got.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5],
            "backlog preserves per-channel order"
        );
    }

    /// Regression (crash-restart purge): a profile that duplicates and
    /// delays every envelope stashes copies addressed to a device; a
    /// crash-restart of that device must clear them all, or a delayed
    /// pre-crash copy lands on the rebooted (re-sequenced) state.
    #[test]
    fn crash_restart_purges_delayed_and_duplicated_envelopes() {
        let profile = FaultProfile {
            seed: 5,
            dup_rate: 1.0,
            delay_rate: 1.0,
            max_delay_ns: 1_000_000,
            ..FaultProfile::none(5)
        };
        let mut t = FaultyTransport::new(FifoTransport::default(), profile);
        for _ in 0..4 {
            t.send(DeviceId(1), 0, data(1, 2));
        }
        t.purge_for_restart(DeviceId(2));
        let got = drain(&mut t);
        assert!(
            got.is_empty(),
            "no pre-crash envelope may survive the purge, got {got:?}"
        );
        // The reliability channel into the rebooted device restarted:
        // a fresh send gets seq 1 and is accepted, not treated as a
        // stale duplicate of the purged stream.
        t.send(DeviceId(1), 0, data(1, 2));
        let got = drain(&mut t);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 1, "channel into rebooted device restarts");
    }

    #[test]
    fn epoch_fence_drops_all_inflight_state() {
        let mut t = FaultyTransport::new(FifoTransport::default(), FaultProfile::chaos(11));
        for _ in 0..20 {
            t.send(DeviceId(1), 0, data(1, 2));
            t.send(DeviceId(3), 0, data(3, 2));
        }
        t.epoch_fence(1);
        let got = drain(&mut t);
        assert!(got.is_empty(), "fence must drop every in-flight envelope");
        t.send(DeviceId(1), 0, data(1, 2));
        let got = drain(&mut t);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 1, "channels restart after the fence");
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let mut t = FaultyTransport::new(FifoTransport::default(), FaultProfile::chaos(seed));
            for i in 0..50 {
                t.send(DeviceId(1), i, data(1, 2));
            }
            drain(&mut t);
            let s = t.stats();
            (s.drops, s.dups, s.reorders, s.delays, s.retransmits)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds should diverge");
    }
}
