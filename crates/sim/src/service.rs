//! The always-on verification service: admission control + SLO
//! tracking around one long-lived simulator harness.
//!
//! Batch runs answer "does the invariant hold for this snapshot?";
//! [`Service`] answers the paper's end-state question — does it *keep*
//! holding while FIB batches and topology churn stream in from many
//! independent sources, and is the verifier keeping up? It is the
//! protocol-facing driver loop the `tulkun daemon` subcommand wraps:
//! requests are *admitted* into bounded per-source queues (the same
//! cap philosophy as the reliability layer's
//! [`DEFAULT_CHANNEL_CAP`]), *drained* round-robin at the caller's
//! cadence, and judged against a latency budget by a
//! [`SloTracker`] rolling one window per drain round.
//!
//! Ordering contract: requests from one source are applied in their
//! arrival order (per-source FIFO); ordering *across* sources is
//! round-robin per drain round, which is the fairness guarantee — a
//! source flooding its queue cannot starve another source's single
//! update. Reports are snapshots-on-demand: [`Service::report`] never
//! drains the ingress queues, it evaluates what the devices have
//! converged to so far.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use crate::event::{DvmSim, FaultyDvmSim, SimConfig, SimResult};
use tulkun_core::churn::TopologyEvent;
use tulkun_core::dvm::reliable::DEFAULT_CHANNEL_CAP;
use tulkun_core::event::{EventOutcome, RuntimeEvent, Substrate};
use tulkun_core::explain::{self, Explanation, Subject};
use tulkun_core::fault::FaultProfile;
use tulkun_core::intent::{IntentDelta, IntentId, IntentStore};
use tulkun_core::planner::{CountingPlan, PlanError};
use tulkun_core::spec::Invariant;
use tulkun_core::verify::{Freshness, Report};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::topology::{DeviceId, Topology};
use tulkun_predicate::BackendKind;
use tulkun_telemetry::{
    JournalEvent, JournalKind, SloPolicy, SloTracker, SloVerdict, Telemetry, TelemetryConfig,
    CONVERGENCE_LAG_NS,
};

/// What to do with a request that arrives while its queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Reject the request (the caller sees [`ServiceError::Shed`] and
    /// may retry after a drain). Never blocks the ingress path.
    Shed,
    /// Drain every queued request first, then admit. Trades ingress
    /// latency for losslessness — the service applies backpressure the
    /// way [`DEFAULT_CHANNEL_CAP`] does on the wire.
    Block,
}

/// Configuration for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Full-queue behavior.
    pub policy: AdmissionPolicy,
    /// Total queued requests across all sources before admission
    /// control engages.
    pub queue_cap: usize,
    /// Queued requests one source may hold before admission control
    /// engages for that source (fairness: one flooding source hits
    /// this long before the shared cap).
    pub per_source_cap: usize,
    /// Latency budgets for the SLO tracker.
    pub slo: SloPolicy,
    /// Predicate backend for the device verifiers.
    pub backend: BackendKind,
    /// Run over a lossy management network (the reliability layer
    /// recovers; the SLO windows see the retransmission cost).
    pub faults: Option<FaultProfile>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            policy: AdmissionPolicy::Block,
            queue_cap: DEFAULT_CHANNEL_CAP,
            per_source_cap: DEFAULT_CHANNEL_CAP / 4,
            slo: SloPolicy::default(),
            backend: BackendKind::Bdd,
            faults: None,
        }
    }
}

/// One admitted unit of work.
#[derive(Debug, Clone)]
pub enum ServiceRequest {
    /// A burst of FIB rule updates, applied as one coalesced batch.
    Batch(Vec<RuleUpdate>),
    /// A live topology churn event (epoch fence + incremental re-plan).
    Churn(TopologyEvent),
    /// Install an invariant as a runtime intent (its DPVNet slice is
    /// deduplicated against live intents).
    IntentAdd {
        /// Human-readable intent name.
        name: String,
        /// The invariant to compile and install.
        invariant: Invariant,
    },
    /// Remove a live intent; shared nodes survive.
    IntentRemove(IntentId),
}

/// Why the service refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Shed by admission control: the named queue was full.
    Shed {
        /// The source whose request was shed.
        source: String,
        /// Requests queued for that source at the time.
        queued: usize,
    },
    /// A churn event the planner rejected (e.g. downing the only
    /// ingress); the old epoch and report stand.
    Rejected(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Shed { source, queued } => {
                write!(
                    f,
                    "shed: queue for source {source:?} is full ({queued} queued)"
                )
            }
            ServiceError::Rejected(why) => write!(f, "rejected: {why}"),
        }
    }
}

/// Counters and queue state for `tulkun status`.
#[derive(Debug, Clone, Default)]
pub struct ServiceStatus {
    /// Requests accepted into a queue since start.
    pub admitted: u64,
    /// Requests refused by admission control since start.
    pub shed: u64,
    /// Requests applied to the harness since start.
    pub processed: u64,
    /// Churn events the planner rejected (epoch unchanged).
    pub rejected_churn: u64,
    /// Intent requests the planner or store rejected (e.g. a slice the
    /// plan cannot count, or removing an unknown id).
    pub rejected_intents: u64,
    /// Installs parked behind an active topology fence, waiting to be
    /// re-planned against the next epoch (parked is *not* rejected).
    pub parked: u64,
    /// Live intents currently degraded because churn severed their
    /// slice; they revive on a later fence.
    pub degraded: u64,
    /// Requests currently queued across all sources.
    pub queued: usize,
    /// Drain rounds run.
    pub drains: u64,
    /// Current topology generation.
    pub epoch: u64,
    /// Requests applied per source, in source order.
    pub per_source: Vec<(String, u64)>,
    /// Live intents in id order: id, name and slice freshness (`false`
    /// when any of the intent's nodes is stale or unreachable).
    pub intents: Vec<IntentStatus>,
}

/// One live intent's row in `tulkun status`.
#[derive(Debug, Clone)]
pub struct IntentStatus {
    /// The intent's id (0 = the base intent the service started with).
    pub id: u64,
    /// Human-readable name.
    pub name: String,
    /// Global DPVNet nodes in the intent's slice (shared nodes counted
    /// once per intent).
    pub nodes: usize,
    /// Every node of the slice is counted against the current epoch.
    pub fresh: bool,
    /// The slice was severed by churn; the intent reports stale
    /// results until a later fence revives it.
    pub degraded: bool,
}

impl ServiceStatus {
    /// The status as a compact JSON object (one line).
    pub fn to_json(&self) -> tulkun_json::Json {
        use tulkun_json::Json;
        Json::Object(vec![
            ("admitted".into(), Json::Int(self.admitted as i64)),
            ("shed".into(), Json::Int(self.shed as i64)),
            ("processed".into(), Json::Int(self.processed as i64)),
            (
                "rejected_churn".into(),
                Json::Int(self.rejected_churn as i64),
            ),
            (
                "rejected_intents".into(),
                Json::Int(self.rejected_intents as i64),
            ),
            ("parked".into(), Json::Int(self.parked as i64)),
            ("degraded".into(), Json::Int(self.degraded as i64)),
            ("queued".into(), Json::Int(self.queued as i64)),
            ("drains".into(), Json::Int(self.drains as i64)),
            ("epoch".into(), Json::Int(self.epoch as i64)),
            (
                "per_source".into(),
                Json::Object(
                    self.per_source
                        .iter()
                        .map(|(s, n)| (s.clone(), Json::Int(*n as i64)))
                        .collect(),
                ),
            ),
            ("intent_count".into(), Json::Int(self.intents.len() as i64)),
            (
                "intents".into(),
                Json::Array(
                    self.intents
                        .iter()
                        .map(|i| {
                            Json::Object(vec![
                                ("id".into(), Json::Int(i.id as i64)),
                                ("name".into(), Json::Str(i.name.clone())),
                                ("nodes".into(), Json::Int(i.nodes as i64)),
                                ("fresh".into(), Json::Bool(i.fresh)),
                                ("degraded".into(), Json::Bool(i.degraded)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One harness, either over perfect or lossy channels. The service
/// drives whichever it was configured with; both converge to the same
/// Report fixpoint.
enum Harness {
    Clean(Box<DvmSim>),
    Faulty(Box<FaultyDvmSim>),
}

impl Harness {
    fn apply_batch(&mut self, updates: &[RuleUpdate]) -> SimResult {
        match self {
            Harness::Clean(s) => s.apply_batch(updates),
            Harness::Faulty(s) => s.apply_batch(updates),
        }
    }

    fn apply_topology_event(
        &mut self,
        ev: &TopologyEvent,
        base: &Topology,
        inv: &Invariant,
    ) -> Result<SimResult, PlanError> {
        match self {
            Harness::Clean(s) => s.apply_topology_event(ev, base, inv),
            Harness::Faulty(s) => s.apply_topology_event(ev, base, inv),
        }
    }

    fn report(&mut self) -> Report {
        match self {
            Harness::Clean(s) => s.report(),
            Harness::Faulty(s) => s.report(),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            Harness::Clean(s) => s.epoch(),
            Harness::Faulty(s) => s.epoch(),
        }
    }

    fn intents(&self) -> &IntentStore {
        match self {
            Harness::Clean(s) => s.intents(),
            Harness::Faulty(s) => s.intents(),
        }
    }

    fn install_intent(
        &mut self,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta, SimResult), PlanError> {
        match self {
            Harness::Clean(s) => s.install_intent(name, inv),
            Harness::Faulty(s) => s.install_intent(name, inv),
        }
    }

    fn install_intent_as(
        &mut self,
        id: IntentId,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta, SimResult), PlanError> {
        match self {
            Harness::Clean(s) => s.install_intent_as(id, name, inv),
            Harness::Faulty(s) => s.install_intent_as(id, name, inv),
        }
    }

    fn remove_intent(&mut self, id: IntentId) -> Result<(IntentDelta, SimResult), PlanError> {
        match self {
            Harness::Clean(s) => s.remove_intent(id),
            Harness::Faulty(s) => s.remove_intent(id),
        }
    }
}

/// The always-on verification service. See the module docs for the
/// admission/ordering contract.
pub struct Service {
    cfg: ServiceConfig,
    harness: Harness,
    /// The network with every *processed* batch folded in — the
    /// rebuild source for [`Service::set_backend`].
    net: Network,
    /// The pre-churn topology every churn re-plan diffs against.
    base_topo: Topology,
    inv: Invariant,
    plan: CountingPlan,
    /// Successfully applied churn events, replayed on rebuild.
    churn_log: Vec<TopologyEvent>,
    /// Per-source FIFO queues, drained round-robin in key order.
    queues: BTreeMap<String, VecDeque<ServiceRequest>>,
    queued: usize,
    processed_by: BTreeMap<String, u64>,
    admitted: u64,
    shed: u64,
    processed: u64,
    rejected_churn: u64,
    rejected_intents: u64,
    drains: u64,
    tel: Arc<Telemetry>,
    slo: SloTracker,
    /// An SLO breach or an `Unreachable` verdict was observed since the
    /// last [`Service::take_dump_pending`]: the embedding daemon should
    /// auto-dump the journal.
    dump_pending: bool,
}

impl Service {
    /// Builds the service over a network snapshot and runs the initial
    /// burst (all FIBs at t=0) so the first report is already the
    /// converged baseline.
    pub fn new(net: &Network, plan: &CountingPlan, inv: &Invariant, cfg: ServiceConfig) -> Service {
        // The service's own always-enabled telemetry handle: the SLO
        // windows are the product, not an optional debugging aid.
        let tel = Telemetry::new(TelemetryConfig::enabled());
        let mut harness = Service::build_harness(net, plan, inv, &cfg, &tel);
        match &mut harness {
            Harness::Clean(s) => {
                s.burst();
            }
            Harness::Faulty(s) => {
                s.burst();
            }
        }
        let mut slo = SloTracker::new(cfg.slo);
        // Roll the init wave into its own window so steady-state
        // windows start from the post-burst baseline.
        slo.roll(&tel.metrics());
        Service {
            harness,
            net: net.clone(),
            base_topo: net.topology.clone(),
            inv: inv.clone(),
            plan: plan.clone(),
            churn_log: Vec::new(),
            queues: BTreeMap::new(),
            queued: 0,
            processed_by: BTreeMap::new(),
            admitted: 0,
            shed: 0,
            processed: 0,
            rejected_churn: 0,
            rejected_intents: 0,
            drains: 0,
            tel,
            slo,
            dump_pending: false,
            cfg,
        }
    }

    fn build_harness(
        net: &Network,
        plan: &CountingPlan,
        inv: &Invariant,
        cfg: &ServiceConfig,
        tel: &Arc<Telemetry>,
    ) -> Harness {
        let sim_cfg = SimConfig {
            telemetry: tel.clone(),
            backend: cfg.backend,
            ..SimConfig::default()
        };
        match cfg.faults {
            Some(profile) => Harness::Faulty(Box::new(FaultyDvmSim::new(
                net,
                plan,
                &inv.packet_space,
                sim_cfg,
                profile,
            ))),
            None => Harness::Clean(Box::new(DvmSim::new(net, plan, &inv.packet_space, sim_cfg))),
        }
    }

    /// Offers one request from `source`. Under [`AdmissionPolicy::Shed`]
    /// a full queue returns [`ServiceError::Shed`]; under
    /// [`AdmissionPolicy::Block`] the service drains everything first
    /// and then admits.
    pub fn offer(&mut self, source: &str, req: ServiceRequest) -> Result<(), ServiceError> {
        let per_source = self.queues.get(source).map_or(0, |q| q.len());
        let full = self.queued >= self.cfg.queue_cap.max(1)
            || per_source >= self.cfg.per_source_cap.max(1);
        if full {
            match self.cfg.policy {
                AdmissionPolicy::Shed => {
                    self.shed += 1;
                    let epoch = self.harness.epoch();
                    self.tel.journal(
                        JournalKind::AdmissionShed,
                        DeviceId(0),
                        epoch,
                        0,
                        None,
                        || format!("shed request from {source:?} ({per_source} queued)"),
                    );
                    return Err(ServiceError::Shed {
                        source: source.to_string(),
                        queued: per_source,
                    });
                }
                AdmissionPolicy::Block => {
                    let epoch = self.harness.epoch();
                    let queued = self.queued;
                    self.tel.journal(
                        JournalKind::AdmissionBlocked,
                        DeviceId(0),
                        epoch,
                        0,
                        None,
                        || format!("blocked ingress from {source:?}: draining {queued} queued"),
                    );
                    self.drain();
                }
            }
        }
        self.queues
            .entry(source.to_string())
            .or_default()
            .push_back(req);
        self.queued += 1;
        self.admitted += 1;
        Ok(())
    }

    /// Drains every queued request. Returns the number applied.
    pub fn drain(&mut self) -> usize {
        self.drain_upto(usize::MAX)
    }

    /// Drains at most `max` requests, round-robin across sources in
    /// source order (one request per non-empty source per pass), and
    /// rolls one SLO window over what ran. Returns the number applied.
    pub fn drain_upto(&mut self, max: usize) -> usize {
        let mut n = 0;
        // Virtual ns elapsed in this round so far: request i's
        // convergence lag is the round's running quiescence time when
        // its own application quiesces, so queueing behind earlier
        // requests counts against the budget.
        let mut round_ns: u64 = 0;
        let sources: Vec<String> = self.queues.keys().cloned().collect();
        'round: loop {
            let mut any = false;
            for src in &sources {
                if n >= max {
                    break 'round;
                }
                let Some(req) = self.queues.get_mut(src).and_then(|q| q.pop_front()) else {
                    continue;
                };
                any = true;
                self.queued -= 1;
                // Journal entries recorded while this request applies
                // carry its source tag (`events <source>` filtering).
                self.tel.journal_scope(Some(src));
                let outcome = self.apply(req);
                self.tel.journal_scope(None);
                n += 1;
                self.processed += 1;
                *self.processed_by.entry(src.clone()).or_default() += 1;
                if let Some(outcome) = outcome {
                    round_ns = round_ns.saturating_add(outcome.completion_ns);
                    self.tel.observe(DeviceId(0), &CONVERGENCE_LAG_NS, round_ns);
                }
            }
            if !any {
                break;
            }
        }
        if n > 0 {
            self.drains += 1;
            self.slo.roll(&self.tel.metrics());
            if !self.slo.verdict().ok() {
                let epoch = self.harness.epoch();
                let drains = self.drains;
                self.tel
                    .journal(JournalKind::SloBreach, DeviceId(0), epoch, 0, None, || {
                        format!("SLO breach after drain round {drains}")
                    });
                self.dump_pending = true;
            }
            self.tel.gauge_set(
                DeviceId(0),
                "tulkun_intent_count",
                self.harness.intents().live().count() as i64,
            );
            self.tel.gauge_set(
                DeviceId(0),
                "tulkun_rejected_intents",
                self.rejected_intents as i64,
            );
            self.tel.gauge_set(
                DeviceId(0),
                "tulkun_parked_intents",
                self.harness.intents().parked_count() as i64,
            );
            self.tel.gauge_set(
                DeviceId(0),
                "tulkun_degraded_intents",
                self.harness.intents().degraded_count() as i64,
            );
        }
        n
    }

    /// Applies one request to the harness; `None` means a rejected
    /// churn event (counted, epoch unchanged).
    fn apply(&mut self, req: ServiceRequest) -> Option<SimResult> {
        match req {
            ServiceRequest::Batch(updates) => {
                for u in &updates {
                    self.net.apply(u);
                }
                Some(self.harness.apply_batch(&updates))
            }
            ServiceRequest::Churn(ev) => {
                match self
                    .harness
                    .apply_topology_event(&ev, &self.base_topo, &self.inv)
                {
                    Ok(outcome) => {
                        self.churn_log.push(ev);
                        Some(outcome)
                    }
                    Err(e) => {
                        self.rejected_churn += 1;
                        let epoch = self.harness.epoch();
                        self.tel.journal(
                            JournalKind::ChurnRejected,
                            ev.primary_device(),
                            epoch,
                            0,
                            None,
                            || format!("planner rejected {}: {e:?}", ev.describe()),
                        );
                        None
                    }
                }
            }
            ServiceRequest::IntentAdd { name, invariant } => {
                match self.harness.install_intent(&name, &invariant) {
                    Ok((_, _, outcome)) => Some(outcome),
                    Err(e) => {
                        self.rejected_intents += 1;
                        let epoch = self.harness.epoch();
                        self.tel.journal(
                            JournalKind::IntentRejected,
                            DeviceId(0),
                            epoch,
                            0,
                            None,
                            || format!("install of intent {name:?} rejected: {e:?}"),
                        );
                        None
                    }
                }
            }
            ServiceRequest::IntentRemove(id) => match self.harness.remove_intent(id) {
                Ok((_, outcome)) => Some(outcome),
                Err(e) => {
                    self.rejected_intents += 1;
                    let epoch = self.harness.epoch();
                    self.tel.journal(
                        JournalKind::IntentRejected,
                        DeviceId(0),
                        epoch,
                        0,
                        Some(id.0),
                        || format!("remove of intent {id} rejected: {e:?}"),
                    );
                    None
                }
            },
        }
    }

    /// A Report snapshot *without* draining the ingress queues: the
    /// sources are evaluated as they have converged so far. Call
    /// [`Service::drain`] first for a quiescent report.
    pub fn report(&mut self) -> Report {
        self.harness.report()
    }

    /// Counters, queue state and per-intent freshness. Takes `&mut
    /// self` because slice freshness reads the current report (result
    /// export runs through each device's BDD manager); the ingress
    /// queues are *not* drained.
    pub fn status(&mut self) -> ServiceStatus {
        let report = self.harness.report();
        let stale: std::collections::BTreeSet<_> = report
            .freshness
            .iter()
            .filter(|(_, f)| !matches!(f, Freshness::Fresh))
            .map(|(n, _)| *n)
            .collect();
        if report
            .freshness
            .iter()
            .any(|(_, f)| matches!(f, Freshness::Unreachable))
        {
            self.dump_pending = true;
        }
        let intents: Vec<IntentStatus> = self
            .harness
            .intents()
            .live()
            .map(|i| {
                let nodes = i.global_nodes();
                IntentStatus {
                    id: i.id.0,
                    name: i.name.clone(),
                    nodes: nodes.len(),
                    fresh: !i.is_degraded() && nodes.iter().all(|n| !stale.contains(n)),
                    degraded: i.is_degraded(),
                }
            })
            .collect();
        // Observability gauges (satellite of the flight recorder): the
        // intent population and per-intent slice freshness, exported
        // through the Prometheus surface. Refreshed here because slice
        // freshness needs the report this method just computed.
        self.tel
            .gauge_set(DeviceId(0), "tulkun_intent_count", intents.len() as i64);
        self.tel.gauge_set(
            DeviceId(0),
            "tulkun_rejected_intents",
            self.rejected_intents as i64,
        );
        let store = self.harness.intents();
        let (parked, degraded) = (store.parked_count() as u64, store.degraded_count() as u64);
        let parked_ids: Vec<u64> = store.parked().map(|p| p.id.0).collect();
        self.tel
            .gauge_set(DeviceId(0), "tulkun_parked_intents", parked as i64);
        self.tel
            .gauge_set(DeviceId(0), "tulkun_degraded_intents", degraded as i64);
        for i in &intents {
            self.tel.gauge_set_labeled(
                DeviceId(0),
                "tulkun_intent_fresh",
                &format!("intent=\"{}\"", i.id),
                i.fresh as i64,
            );
            // A live id was either never parked or has since landed;
            // refreshing both labels to their current state keeps the
            // exported series honest across park -> land transitions.
            self.tel.gauge_set_labeled(
                DeviceId(0),
                "tulkun_degraded_intents",
                &format!("intent=\"{}\"", i.id),
                i.degraded as i64,
            );
            self.tel.gauge_set_labeled(
                DeviceId(0),
                "tulkun_parked_intents",
                &format!("intent=\"{}\"", i.id),
                0,
            );
        }
        for id in &parked_ids {
            self.tel.gauge_set_labeled(
                DeviceId(0),
                "tulkun_parked_intents",
                &format!("intent=\"{}\"", id),
                1,
            );
        }
        ServiceStatus {
            admitted: self.admitted,
            shed: self.shed,
            processed: self.processed,
            rejected_churn: self.rejected_churn,
            rejected_intents: self.rejected_intents,
            parked,
            degraded,
            queued: self.queued,
            drains: self.drains,
            epoch: self.harness.epoch(),
            per_source: self
                .processed_by
                .iter()
                .map(|(s, n)| (s.clone(), *n))
                .collect(),
            intents,
        }
    }

    /// The runtime intent store (read-only).
    pub fn intents(&self) -> &IntentStore {
        self.harness.intents()
    }

    /// The SLO verdict over the rolling drain-round windows.
    pub fn slo(&self) -> SloVerdict {
        self.slo.verdict()
    }

    /// Replaces the SLO budgets (live config edit).
    pub fn set_slo(&mut self, policy: SloPolicy) {
        self.slo.set_policy(policy);
    }

    /// The active SLO budgets.
    pub fn slo_policy(&self) -> &SloPolicy {
        self.slo.policy()
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Replaces the admission policy (live config edit).
    pub fn set_policy(&mut self, policy: AdmissionPolicy) {
        self.cfg.policy = policy;
    }

    /// A snapshot of the service's full metrics registry (cumulative
    /// since start — the SLO verdict covers only the rolling windows).
    pub fn metrics(&self) -> tulkun_telemetry::MetricsSnapshot {
        self.tel.metrics()
    }

    /// Prometheus text exposition: the full registry plus the
    /// `tulkun_slo_*` verdict gauges.
    pub fn metrics_text(&self) -> String {
        let mut out = self.tel.prometheus_text();
        out.push_str(&self.slo.verdict().prometheus_text());
        out
    }

    /// Hot-swaps the predicate backend: rebuilds the harness from the
    /// current network (every processed batch folded in), re-runs the
    /// burst, replays the successful churn log so the epoch and
    /// quarantine state carry over, and re-installs every live runtime
    /// intent *under its original id* (ids are part of the protocol —
    /// a client holding an id from before the swap can still remove
    /// it). Queued-but-undrained requests are preserved and will be
    /// applied to the new harness. The rebuild's init wave lands in the
    /// SLO windows — a backend switch is not free, and the tracker says
    /// so.
    pub fn set_backend(&mut self, backend: BackendKind) -> Result<(), ServiceError> {
        self.cfg.backend = backend;
        // Live non-base intents, read off the old harness before it is
        // dropped (the base intent is re-seeded by construction).
        let live: Vec<(IntentId, String, Option<Invariant>)> = self
            .harness
            .intents()
            .live()
            .filter(|i| i.id.0 != 0)
            .map(|i| (i.id, i.name.clone(), i.invariant.clone()))
            .collect();
        // Installs parked behind an in-flight fence must survive the
        // swap too: replayed under the same churn state they park again
        // deterministically under their original id (the retry budget
        // restarts — a swap is a fresh admission, not a burned fence).
        let parked: Vec<(IntentId, String, Invariant)> = self
            .harness
            .intents()
            .parked()
            .map(|p| (p.id, p.name.clone(), p.invariant.clone()))
            .collect();
        let mut harness =
            Service::build_harness(&self.net, &self.plan, &self.inv, &self.cfg, &self.tel);
        match &mut harness {
            Harness::Clean(s) => {
                s.burst();
            }
            Harness::Faulty(s) => {
                s.burst();
            }
        }
        // Intents first, churn second: the churn replay's fences then
        // re-plan every slice exactly as the live history did, so an
        // intent whose slice churn severed comes back *degraded* (not
        // parked, not rejected). Parked installs replay last, under the
        // replayed churn state, and deterministically park again.
        for (id, name, inv) in &live {
            let Some(inv) = inv else {
                return Err(ServiceError::Rejected(format!(
                    "intent {id} has no stored invariant to replay"
                )));
            };
            harness
                .install_intent_as(*id, name, inv)
                .map_err(|e| ServiceError::Rejected(format!("intent replay failed: {e:?}")))?;
        }
        for ev in &self.churn_log {
            harness
                .apply_topology_event(ev, &self.base_topo, &self.inv)
                .map_err(|e| ServiceError::Rejected(format!("churn replay failed: {e:?}")))?;
        }
        for (id, name, inv) in &parked {
            harness
                .install_intent_as(*id, name, inv)
                .map_err(|e| ServiceError::Rejected(format!("parked replay failed: {e:?}")))?;
        }
        self.harness = harness;
        let epoch = self.harness.epoch();
        self.tel.journal(
            JournalKind::BackendSwap,
            DeviceId(0),
            epoch,
            0,
            None,
            || {
                format!(
                    "hot-swapped predicate backend to {backend} (rebuild + burst + \
                     churn replay + {} intent replays)",
                    live.len()
                )
            },
        );
        self.slo.roll(&self.tel.metrics());
        Ok(())
    }

    /// Journal entries, oldest first, optionally filtered to one
    /// ingress source. A source filter keeps that source's entries
    /// *plus* untagged driver-side entries (bursts, SLO verdicts,
    /// admission decisions — shared causal context). At most `limit`
    /// entries are returned, keeping the newest.
    pub fn journal_events(&self, source: Option<&str>, limit: usize) -> Vec<JournalEvent> {
        let mut events: Vec<JournalEvent> = self
            .tel
            .journal_events()
            .into_iter()
            .filter(|e| match source {
                None => true,
                Some(s) => e.source.is_none() || e.source.as_deref() == Some(s),
            })
            .collect();
        if events.len() > limit {
            events.drain(..events.len() - limit);
        }
        events
    }

    /// The full journal as one deterministic JSON document
    /// (`tulkun-journal-v1`).
    pub fn journal_json(&self) -> String {
        self.tel.journal_json()
    }

    /// True once per SLO breach or `Unreachable` sighting: the caller
    /// (the daemon) should dump the journal now. Clears the flag.
    pub fn take_dump_pending(&mut self) -> bool {
        std::mem::take(&mut self.dump_pending)
    }

    /// The service's telemetry handle (journal + metrics), for
    /// embedding surfaces that render exports directly.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.tel
    }

    /// Explains why a device's slice is degraded (or confirms it is
    /// fresh): computes the device's verdict from the current report
    /// and walks the journal backwards for the ranked causal chain.
    pub fn explain_device(&mut self, source: Option<&str>, dev: DeviceId) -> Explanation {
        let report = self.harness.report();
        let nodes: Vec<u32> = self
            .harness
            .intents()
            .global_tasks()
            .iter()
            .filter(|t| t.dev == dev)
            .map(|t| t.node.0)
            .collect();
        let verdict = explain::device_verdict(&report, dev, &nodes);
        if verdict.contains("unreachable") {
            self.dump_pending = true;
        }
        let events = self.journal_events(source, usize::MAX);
        explain::explain(&events, Subject::Device(dev), &verdict)
    }

    /// Explains why an intent's slice is degraded (or confirms it is
    /// fresh), by intent id (0 = the base intent). A parked install —
    /// one that raced a topology fence and is waiting to be re-planned
    /// — gets a `parked` verdict whose causal chain leads back to the
    /// fence it raced.
    pub fn explain_intent(&mut self, source: Option<&str>, id: u64) -> Explanation {
        let report = self.harness.report();
        let nodes: Vec<u32> = self
            .harness
            .intents()
            .get(IntentId(id))
            .map(|i| i.global_nodes().iter().map(|n| n.0).collect())
            .unwrap_or_default();
        let verdict = if self.harness.intents().is_parked(IntentId(id)) {
            format!("parked(awaiting epoch {})", self.harness.epoch() + 1)
        } else {
            explain::intent_verdict(&report, id, &nodes)
        };
        if verdict.contains("unreachable") {
            self.dump_pending = true;
        }
        let events = self.journal_events(source, usize::MAX);
        explain::explain(&events, Subject::Intent(id), &verdict)
    }
}

impl Substrate for Service {
    /// The uniform event entry point: intent and batch/churn events are
    /// *offered* through admission control under the synthetic source
    /// `"event"` and drained immediately (one-request round);
    /// [`RuntimeEvent::SetBackend`] maps to the rebuild path and
    /// [`RuntimeEvent::CrashRestart`] is outside the service's model.
    fn apply_event(&mut self, ev: &RuntimeEvent) -> Result<EventOutcome, PlanError> {
        use RuntimeEvent as E;
        let req = match ev {
            E::Batch(updates) => ServiceRequest::Batch(updates.clone()),
            E::Topology { event, .. } => ServiceRequest::Churn(*event),
            E::CrashRestart(_) => {
                return Err(PlanError::Unsupported(
                    "the service drives a simulator harness without \
                     crash injection; use the sim substrates directly"
                        .to_string(),
                ))
            }
            E::SetBackend(kind) => {
                self.set_backend(*kind)
                    .map_err(|e| PlanError::Unsupported(e.to_string()))?;
                return Ok(EventOutcome::default());
            }
            E::InstallIntent { name, invariant } => ServiceRequest::IntentAdd {
                name: name.clone(),
                invariant: invariant.clone(),
            },
            E::RemoveIntent(id) => ServiceRequest::IntentRemove(*id),
        };
        // Flush queued work first so the id the store will hand our
        // install is known before it is enqueued.
        self.drain();
        let before = (self.rejected_churn, self.rejected_intents);
        let next_id = match ev {
            E::InstallIntent { .. } => Some(IntentId(self.harness.intents().next_intent_id())),
            _ => None,
        };
        self.offer("event", req)
            .map_err(|e| PlanError::Unsupported(e.to_string()))?;
        self.drain();
        if self.rejected_churn > before.0 || self.rejected_intents > before.1 {
            return Err(PlanError::Unsupported(
                "the harness rejected the event (see status counters)".to_string(),
            ));
        }
        Ok(EventOutcome {
            messages: 0,
            intent: match ev {
                E::InstallIntent { .. } => next_id,
                E::RemoveIntent(id) => Some(*id),
                _ => None,
            },
            slice: None,
            parked: match (ev, next_id) {
                (E::InstallIntent { .. }, Some(id)) => self.harness.intents().is_parked(id),
                _ => false,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_core::count::CountExpr;
    use tulkun_core::planner::Planner;
    use tulkun_core::spec::{Behavior, PacketSpace, PathExpr};
    use tulkun_datasets::fig2a_network;
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
    use tulkun_netmodel::topology::Topology;

    fn fixture() -> (Network, CountingPlan, Invariant) {
        let net = fig2a_network();
        let inv = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress(["S"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("S .* D").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        (net, cp, inv)
    }

    /// An IP-only line S → B → W → D (dst-prefix matches only), so the
    /// interval backends are legal for the swap test.
    fn line_fixture() -> (Network, CountingPlan, Invariant) {
        let mut t = Topology::new();
        let s = t.add_device("S");
        let b = t.add_device("B");
        let w = t.add_device("W");
        let d = t.add_device("D");
        t.add_link(s, b, 1000);
        t.add_link(b, w, 1000);
        t.add_link(w, d, 1000);
        let p: tulkun_netmodel::prefix::IpPrefix = "10.0.0.0/23".parse().unwrap();
        t.add_external_prefix(d, p);
        let mut net = Network::new(t);
        for (dev, hop) in [(s, Some(b)), (b, Some(w)), (w, Some(d)), (d, None)] {
            net.fib_mut(dev).insert(Rule {
                priority: 24,
                matches: MatchSpec::dst(p),
                action: match hop {
                    Some(h) => Action::fwd(h),
                    None => Action::deliver(),
                },
            });
        }
        let inv = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress(["S"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("S .* D").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        (net, cp, inv)
    }

    fn some_update(net: &Network, prio: u32) -> RuleUpdate {
        let b = net.topology.device("B").unwrap();
        let w = net.topology.device("W").unwrap();
        RuleUpdate::Insert {
            device: b,
            rule: Rule {
                priority: prio,
                matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
                action: Action::fwd(w),
            },
        }
    }

    #[test]
    fn shed_policy_rejects_beyond_per_source_cap() {
        let (net, cp, inv) = fixture();
        let cfg = ServiceConfig {
            policy: AdmissionPolicy::Shed,
            per_source_cap: 2,
            ..ServiceConfig::default()
        };
        let mut svc = Service::new(&net, &cp, &inv, cfg);
        for i in 0..2 {
            svc.offer("a", ServiceRequest::Batch(vec![some_update(&net, 40 + i)]))
                .unwrap();
        }
        let err = svc
            .offer("a", ServiceRequest::Batch(vec![some_update(&net, 50)]))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Shed { queued: 2, .. }));
        // Fairness: source "b" is unaffected by "a"'s full queue.
        svc.offer("b", ServiceRequest::Batch(vec![some_update(&net, 51)]))
            .unwrap();
        let st = svc.status();
        assert_eq!((st.admitted, st.shed, st.queued), (3, 1, 3));
        svc.drain();
        assert_eq!(svc.status().queued, 0);
        assert_eq!(svc.status().processed, 3);
    }

    #[test]
    fn block_policy_drains_instead_of_shedding() {
        let (net, cp, inv) = fixture();
        let cfg = ServiceConfig {
            policy: AdmissionPolicy::Block,
            per_source_cap: 1,
            ..ServiceConfig::default()
        };
        let mut svc = Service::new(&net, &cp, &inv, cfg);
        svc.offer("a", ServiceRequest::Batch(vec![some_update(&net, 40)]))
            .unwrap();
        // Queue full: this offer forces a drain, then admits.
        svc.offer("a", ServiceRequest::Batch(vec![some_update(&net, 41)]))
            .unwrap();
        let st = svc.status();
        assert_eq!(st.shed, 0);
        assert_eq!(st.processed, 1, "the blocked offer drained first");
        assert_eq!(st.queued, 1);
    }

    #[test]
    fn drain_is_round_robin_across_sources() {
        let (net, cp, inv) = fixture();
        let mut svc = Service::new(&net, &cp, &inv, ServiceConfig::default());
        for i in 0..3 {
            svc.offer("a", ServiceRequest::Batch(vec![some_update(&net, 40 + i)]))
                .unwrap();
        }
        svc.offer("b", ServiceRequest::Batch(vec![some_update(&net, 50)]))
            .unwrap();
        // Two slots: one must go to each source, not both to "a".
        assert_eq!(svc.drain_upto(2), 2);
        let st = svc.status();
        assert_eq!(
            st.per_source,
            vec![("a".to_string(), 1), ("b".to_string(), 1)]
        );
        assert_eq!(svc.drain(), 2);
    }

    #[test]
    fn service_report_matches_direct_replay_including_churn() {
        let (net, cp, inv) = fixture();
        let mut svc = Service::new(&net, &cp, &inv, ServiceConfig::default());
        let b = net.topology.device("B").unwrap();
        let w = net.topology.device("W").unwrap();
        let up = some_update(&net, 40);
        svc.offer("cp", ServiceRequest::Batch(vec![up.clone()]))
            .unwrap();
        svc.offer("cp", ServiceRequest::Churn(TopologyEvent::LinkDown(b, w)))
            .unwrap();
        svc.drain();
        assert_eq!(svc.status().epoch, 1);

        let mut reference = DvmSim::new(&net, &cp, &inv.packet_space, SimConfig::default());
        reference.burst();
        reference.apply_batch(std::slice::from_ref(&up));
        reference
            .apply_topology_event(&TopologyEvent::LinkDown(b, w), &net.topology, &inv)
            .unwrap();
        assert_eq!(
            svc.report().canonical_bytes(),
            reference.report().canonical_bytes()
        );
        // SLO machinery saw the work: windows rolled, samples recorded.
        assert!(svc.slo().samples > 0);
        assert!(svc.slo().lag_samples >= 2);
    }

    #[test]
    fn lossy_service_converges_to_clean_report() {
        let (net, cp, inv) = fixture();
        let cfg = ServiceConfig {
            faults: Some(FaultProfile::loss(23, 0.10)),
            ..ServiceConfig::default()
        };
        let mut svc = Service::new(&net, &cp, &inv, cfg);
        for i in 0..4 {
            svc.offer("s", ServiceRequest::Batch(vec![some_update(&net, 40 + i)]))
                .unwrap();
        }
        svc.drain();
        let mut clean = DvmSim::new(&net, &cp, &inv.packet_space, SimConfig::default());
        clean.burst();
        for i in 0..4 {
            clean.apply_batch(&[some_update(&net, 40 + i)]);
        }
        assert_eq!(
            svc.report().canonical_bytes(),
            clean.report().canonical_bytes()
        );
    }

    #[test]
    fn backend_swap_preserves_report_and_queues() {
        let (net, cp, inv) = line_fixture();
        let mut svc = Service::new(&net, &cp, &inv, ServiceConfig::default());
        svc.offer("s", ServiceRequest::Batch(vec![some_update(&net, 40)]))
            .unwrap();
        svc.drain();
        let before = svc.report().canonical_bytes();
        // Queue one request, swap under it, then drain on the new
        // backend.
        svc.offer("s", ServiceRequest::Batch(vec![some_update(&net, 41)]))
            .unwrap();
        svc.set_backend(BackendKind::DeltaNet).unwrap();
        assert_eq!(svc.report().canonical_bytes(), before, "swap is invisible");
        assert_eq!(svc.status().queued, 1, "queued work survives the swap");
        svc.drain();
        let mut reference = DvmSim::new(&net, &cp, &inv.packet_space, SimConfig::default());
        reference.burst();
        reference.apply_batch(&[some_update(&net, 40)]);
        reference.apply_batch(&[some_update(&net, 41)]);
        assert_eq!(
            svc.report().canonical_bytes(),
            reference.report().canonical_bytes()
        );
    }
}
