//! The shared device-runtime layer.
//!
//! The paper's core claim is that the *same* on-device verifier code
//! runs everywhere — testbed switches, simulation, emulation (§8–9).
//! This module is the repro's embodiment of that claim: one generic
//! [`Engine`] owns verifier construction, envelope routing, quiescence
//! detection, result collection and [`Report`] assembly, while the
//! execution substrates differ only in two small policy objects:
//!
//! * a [`Transport`] decides *when and in what order* envelopes are
//!   delivered ([`LatencyTransport`] replays topology link latencies
//!   through a virtual-time heap; [`FifoTransport`] delivers instantly
//!   in order — the synchronous reference semantics);
//! * a [`Clock`] decides *what processing costs* (a [`VirtualClock`]
//!   charges measured host CPU time scaled by a [`SwitchModel`] to a
//!   per-device timeline; an [`InstantClock`] charges nothing).
//!
//! The genuinely concurrent substrate — one OS thread per device, the
//! deployment shape of the paper's prototype — is [`ThreadedEngine`].
//! It shares the engine's constructor ([`build_verifiers`]), its
//! quiescence rule (an in-flight gauge: a message's outputs are counted
//! before its own count is released) and its [`RuntimeStats`]; only the
//! driver loop runs on worker threads instead of a pull loop.
//!
//! Every substrate reports through one [`RuntimeStats`] so the Fig. 14
//! (init overhead), Fig. 15 (message overhead) and ablation harnesses
//! read a single API regardless of how the verifiers were driven.
//!
//! Adding a new backend (real TCP, sharded partitions) means writing a
//! `Transport` impl — roughly a hundred lines — not a fourth copy of
//! the spawn/route/quiesce/collect loop.

use crate::models::SwitchModel;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tulkun_bdd::serial::PortablePred;
use tulkun_bdd::HeaderLayout;
use tulkun_core::churn::{ChurnState, TopologyEvent};
use tulkun_core::count::Counts;
use tulkun_core::dpvnet::NodeId;
use tulkun_core::dvm::{DeviceVerifier, Envelope, Payload, VerifierConfig};
use tulkun_core::event::{EventOutcome, RuntimeEvent, Substrate};
use tulkun_core::fault::FaultStats;
use tulkun_core::intent::{plan_intent_on, IntentDelta, IntentId, IntentStore};
use tulkun_core::planner::{CountingPlan, NodeTask, PlanError, PlanKind, Planner};
use tulkun_core::spec::{Invariant, PacketSpace};
use tulkun_core::verify::{self, Report};
use tulkun_netmodel::network::{Network, RuleUpdate, UpdateBatch};
use tulkun_netmodel::{DeviceId, Topology};
use tulkun_predicate::{network_ip_only, BackendKind};
use tulkun_telemetry::{JournalKind, Reservoir, Telemetry, HANDLE_NS};

/// One device's exported LEC table (predicates + actions).
pub type LecTable = Vec<(PortablePred, tulkun_netmodel::fib::Action)>;

/// Number of lock shards in a [`LecCache`]. Device ids hash trivially
/// (`idx % SHARDS`), so any modest power of two spreads contention.
const LEC_CACHE_SHARDS: usize = 16;

/// A shared per-device LEC-table cache (exported predicates + actions),
/// valid as long as the device's FIB is unchanged. One device builds
/// its LEC table once for all invariants — the paper's §8 architecture.
///
/// The cache is sharded per device: each shard has its own lock, and
/// tables are handed out as `Arc`s, so `parallel_init` workers and
/// concurrent batch application never serialize on one global `Mutex`.
/// All methods take `&self`; existing `&mut LecCache` call sites keep
/// working through auto-coercion.
///
/// Generic over the stored value; the default [`LecTable`] holds the
/// backend-neutral wire encoding (exported predicates are canonical
/// ROBDD bytes whatever backend produced them), so one cache serves
/// engines running different predicate backends.
pub struct LecCache<V = LecTable> {
    shards: [Mutex<BTreeMap<DeviceId, Arc<V>>>; LEC_CACHE_SHARDS],
}

impl<V> LecCache<V> {
    /// An empty cache.
    pub fn new() -> LecCache<V> {
        LecCache {
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
        }
    }

    fn shard(&self, dev: DeviceId) -> &Mutex<BTreeMap<DeviceId, Arc<V>>> {
        &self.shards[dev.idx() % LEC_CACHE_SHARDS]
    }

    /// The cached LEC table of a device, if any.
    pub fn get(&self, dev: DeviceId) -> Option<Arc<V>> {
        self.shard(dev).lock().unwrap().get(&dev).cloned()
    }

    /// Caches a device's exported LEC table.
    pub fn insert(&self, dev: DeviceId, lecs: V) {
        self.shard(dev).lock().unwrap().insert(dev, Arc::new(lecs));
    }

    /// Number of devices with a cached table.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True if no device has a cached table.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().unwrap().is_empty())
    }
}

impl<V> Default for LecCache<V> {
    fn default() -> LecCache<V> {
        LecCache::new()
    }
}

/// Per-device counters for the §9.4 overhead figures.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceStats {
    /// Scaled CPU time spent initializing (LEC + initial counting).
    pub init_ns: u64,
    /// Scaled CPU time spent processing DVM messages.
    pub busy_ns: u64,
    /// DVM messages processed.
    pub messages: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Backend memory units allocated (BDD nodes, stored intervals or
    /// atom-list entries, depending on the predicate backend).
    pub bdd_nodes: usize,
    /// Largest scaled single-message processing time (ns). Per-message
    /// *samples* live in [`RuntimeStats::msg_ns_samples`].
    pub max_msg_ns: u64,
}

impl DeviceStats {
    fn absorb_message(&mut self, cpu_ns: u64, bytes_sent: u64, bdd_nodes: usize) {
        self.busy_ns += cpu_ns;
        self.messages += 1;
        self.max_msg_ns = self.max_msg_ns.max(cpu_ns);
        self.bytes_sent += bytes_sent;
        self.bdd_nodes = bdd_nodes;
    }
}

/// The single observability surface of the runtime layer: every
/// substrate fills one of these, and every harness (Fig. 14, Fig. 15,
/// the ablation bench) reads it the same way.
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Per-device overhead counters.
    pub per_device: BTreeMap<DeviceId, DeviceStats>,
    /// Scaled per-message processing-time samples (ns), offered in
    /// delivery order to a bounded reservoir
    /// ([`tulkun_telemetry::RESERVOIR_CAP`] = 65 536 kept samples, a
    /// deterministic uniform sample once a long replay exceeds the
    /// cap — unbounded growth was a leak on multi-million-message
    /// runs). Drain with [`RuntimeStats::drain_msg_samples`] (the
    /// Fig. 15 harness does).
    pub msg_ns_samples: Reservoir,
    /// Messages delivered across all devices.
    pub messages: usize,
    /// Total bytes on the wire.
    pub bytes: u64,
    /// Reliability-layer counters (drops, retransmits, acks, …) when the
    /// run used a fault-injecting transport; all-zero otherwise.
    pub fault: FaultStats,
    /// Device crash/restart events recovered without aborting the run.
    pub crashes_recovered: u64,
}

impl RuntimeStats {
    /// Takes the per-message samples kept so far, leaving the
    /// reservoir empty (so repeated harness phases don't
    /// double-count).
    pub fn drain_msg_samples(&mut self) -> Vec<u64> {
        self.msg_ns_samples.drain()
    }

    /// Histogram of the current per-message samples: `bounds` are the
    /// inclusive upper edges of each bucket; one overflow bucket is
    /// appended, so the result has `bounds.len() + 1` entries.
    pub fn msg_ns_histogram(&self, bounds: &[u64]) -> Vec<usize> {
        let mut h = vec![0usize; bounds.len() + 1];
        for &s in self.msg_ns_samples.as_slice() {
            let i = bounds.iter().position(|&b| s <= b).unwrap_or(bounds.len());
            h[i] += 1;
        }
        h
    }

    /// Largest single-message processing time across all devices.
    pub fn max_msg_ns(&self) -> u64 {
        self.per_device
            .values()
            .map(|s| s.max_msg_ns)
            .max()
            .unwrap_or(0)
    }

    fn merge_device(&mut self, dev: DeviceId, st: DeviceStats) {
        let e = self.per_device.entry(dev).or_default();
        e.init_ns += st.init_ns;
        e.busy_ns += st.busy_ns;
        e.messages += st.messages;
        e.bytes_sent += st.bytes_sent;
        e.bdd_nodes = st.bdd_nodes;
        e.max_msg_ns = e.max_msg_ns.max(st.max_msg_ns);
    }
}

/// The timeline slice one message occupied on its device.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// When processing started (arrival, or later if the device was
    /// busy).
    pub begin: u64,
    /// Charged (scaled) CPU time.
    pub cpu_ns: u64,
    /// `begin + cpu_ns`.
    pub finish: u64,
}

/// Maps measured host CPU time onto a substrate's notion of time.
pub trait Clock {
    /// Charges `host_ns` of measured work to `dev` for a message that
    /// arrived at `arrival`; returns the occupied span.
    fn charge(&mut self, dev: DeviceId, arrival: u64, host_ns: u64) -> Span;
    /// Resets all per-device timelines to zero (per-event relative
    /// timing, as the incremental harnesses need).
    fn reset(&mut self);
    /// Marks a device busy until `t` without charging CPU (used when
    /// init cost is accounted outside the message loop).
    fn set_free_at(&mut self, dev: DeviceId, t: u64);
}

/// The event-simulator clock: each device is a sequential processor; a
/// message arriving at `t` starts at `max(t, device_free)` and runs for
/// its *measured* host CPU time scaled by the switch model (§9.3.1).
#[derive(Debug, Clone)]
pub struct VirtualClock {
    /// The switch model whose CPU factor scales measured host time.
    pub model: SwitchModel,
    free_at: BTreeMap<DeviceId, u64>,
}

impl VirtualClock {
    /// A virtual clock for one switch model.
    pub fn new(model: SwitchModel) -> VirtualClock {
        VirtualClock {
            model,
            free_at: BTreeMap::new(),
        }
    }
}

impl Clock for VirtualClock {
    fn charge(&mut self, dev: DeviceId, arrival: u64, host_ns: u64) -> Span {
        let begin = arrival.max(self.free_at.get(&dev).copied().unwrap_or(0));
        let cpu_ns = self.model.scale_ns(host_ns);
        let finish = begin + cpu_ns;
        self.free_at.insert(dev, finish);
        Span {
            begin,
            cpu_ns,
            finish,
        }
    }

    fn reset(&mut self) {
        for t in self.free_at.values_mut() {
            *t = 0;
        }
    }

    fn set_free_at(&mut self, dev: DeviceId, t: u64) {
        self.free_at.insert(dev, t);
    }
}

/// The zero-cost clock of the synchronous reference substrate: message
/// processing takes no simulated time, so only the verdict (not the
/// timeline) is meaningful.
#[derive(Debug, Clone, Copy, Default)]
pub struct InstantClock;

impl Clock for InstantClock {
    fn charge(&mut self, _dev: DeviceId, _arrival: u64, _host_ns: u64) -> Span {
        Span {
            begin: 0,
            cpu_ns: 0,
            finish: 0,
        }
    }
    fn reset(&mut self) {}
    fn set_free_at(&mut self, _dev: DeviceId, _t: u64) {}
}

/// The centralized-collection clock (§9.3.1): data planes travel to a
/// verifier device over lowest-latency paths, plus serialization time
/// through the verifier's management uplink. The central baseline
/// substrate is this clock plus a measured compute phase — it has no
/// transport because nothing is distributed.
#[derive(Debug, Clone)]
pub struct CollectionClock {
    /// Lowest-latency distance from every device to the verifier
    /// location (`u64::MAX` = unreachable).
    dist: Vec<u64>,
    /// Management-network bandwidth into the verifier, bits/second.
    pub mgmt_bandwidth_bps: u64,
}

impl CollectionClock {
    /// Precomputes lowest-latency paths to `verifier_loc`.
    pub fn new(topo: &Topology, verifier_loc: DeviceId, mgmt_bandwidth_bps: u64) -> Self {
        CollectionClock {
            dist: topo.dijkstra_latency(verifier_loc, &[]),
            mgmt_bandwidth_bps,
        }
    }

    /// Latency for every device to ship `total_bytes` of data plane to
    /// the verifier: the slowest reachable device's propagation delay
    /// plus the serialization time of all bytes through the uplink.
    pub fn collect_all(&self, total_bytes: u64) -> u64 {
        let prop = self
            .dist
            .iter()
            .filter(|&&d| d != u64::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        prop + total_bytes * 8 * 1_000_000_000 / self.mgmt_bandwidth_bps
    }

    /// Latency for one device's update to reach the verifier.
    pub fn collect_from(&self, dev: DeviceId) -> u64 {
        match self.dist.get(dev.idx()).copied().unwrap_or(u64::MAX) {
            u64::MAX => 0,
            d => d,
        }
    }
}

/// Measures one closure's host CPU time in nanoseconds.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let wall = Instant::now();
    let out = f();
    (out, wall.elapsed().as_nanos() as u64)
}

/// Decides when and in what order envelopes are delivered.
pub trait Transport {
    /// Accepts an envelope sent by `from` at (substrate) time `at`.
    fn send(&mut self, from: DeviceId, at: u64, env: Envelope);
    /// The next envelope to deliver, with its arrival time, or `None`
    /// when no message is in flight (quiescence).
    fn recv(&mut self) -> Option<(u64, Envelope)>;
    /// Reliability-layer counters, for transports that inject faults
    /// (see `FaultyTransport` in the sim crate). Perfect transports
    /// report `None`.
    fn fault_stats(&self) -> Option<FaultStats> {
        None
    }
    /// Epoch fence: the topology generation bumped, so every in-flight
    /// envelope (data *and* acks) is superseded — drop them all and
    /// reset any reliability state. Called by the engine *before* any
    /// new-epoch send, so the wipe is coherent: re-announcement under
    /// the new epoch repairs exactly the state the dropped messages
    /// carried.
    fn epoch_fence(&mut self, _epoch: u64) {}
    /// A device's verification agent crashed and restarted: drop every
    /// pending envelope addressed to it (delayed/duplicated copies must
    /// not land on the fresh state) plus any stale acks it originated,
    /// and restart reliability channels into it (neighbor replays rebuild
    /// the content).
    fn purge_for_restart(&mut self, _dev: DeviceId) {}
    /// The topology changed under live churn; latency-aware transports
    /// re-route future sends against the new link set.
    fn set_topology(&mut self, _topo: &Topology) {}
}

/// Delivery through the topology's links: each envelope arrives after
/// its link's propagation latency, and the earliest arrival is
/// delivered first (a virtual-time event heap).
pub struct LatencyTransport {
    topo: Topology,
    /// Latency used when two communicating devices share no direct
    /// link (only possible for virtual constructions).
    fallback_latency_ns: u64,
    queue: BinaryHeap<Reverse<(u64, u64, EnvelopeOrd)>>,
    seq: u64,
}

impl LatencyTransport {
    /// A transport over one topology snapshot.
    pub fn new(topo: Topology, fallback_latency_ns: u64) -> LatencyTransport {
        LatencyTransport {
            topo,
            fallback_latency_ns,
            queue: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn latency(&self, a: DeviceId, b: DeviceId) -> u64 {
        if a == b {
            return 0;
        }
        match self.topo.link_between(a, b) {
            Some(l) => self.topo.link(l).latency_ns,
            None => self.fallback_latency_ns,
        }
    }
}

impl Transport for LatencyTransport {
    fn send(&mut self, from: DeviceId, at: u64, env: Envelope) {
        let arrival = at + self.latency(from, env.to);
        self.seq += 1;
        self.queue
            .push(Reverse((arrival, self.seq, EnvelopeOrd(env))));
    }

    fn recv(&mut self) -> Option<(u64, Envelope)> {
        self.queue
            .pop()
            .map(|Reverse((arrival, _, EnvelopeOrd(env)))| (arrival, env))
    }

    fn epoch_fence(&mut self, _epoch: u64) {
        self.queue.clear();
    }

    fn purge_for_restart(&mut self, dev: DeviceId) {
        let kept: Vec<_> = self
            .queue
            .drain()
            .filter(|Reverse((_, _, EnvelopeOrd(env)))| !purged_by_restart(env, dev))
            .collect();
        self.queue = kept.into_iter().collect();
    }

    fn set_topology(&mut self, topo: &Topology) {
        self.topo = topo.clone();
    }
}

/// Is this in-flight envelope invalidated by `dev` crash-restarting?
/// Anything addressed to the rebooted device, plus any ack it sent
/// before dying (a stale ack could acknowledge a fresh post-restart
/// sequence number after the channel reset).
fn purged_by_restart(env: &Envelope, dev: DeviceId) -> bool {
    env.to == dev || (matches!(env.payload, Payload::Ack { .. }) && env.from == dev)
}

/// Instant in-order delivery: the synchronous reference semantics
/// (zero latency, FIFO), and the natural transport for communication-
/// free local plans.
#[derive(Debug, Default)]
pub struct FifoTransport {
    queue: VecDeque<Envelope>,
}

impl Transport for FifoTransport {
    fn send(&mut self, _from: DeviceId, _at: u64, env: Envelope) {
        self.queue.push_back(env);
    }

    fn recv(&mut self) -> Option<(u64, Envelope)> {
        self.queue.pop_front().map(|env| (0, env))
    }

    fn epoch_fence(&mut self, _epoch: u64) {
        self.queue.clear();
    }

    fn purge_for_restart(&mut self, dev: DeviceId) {
        self.queue.retain(|env| !purged_by_restart(env, dev));
    }
}

/// Envelope wrapper ordered by heap sequence only (`BinaryHeap` needs
/// `Ord`; envelopes themselves are not ordered).
struct EnvelopeOrd(Envelope);

impl PartialEq for EnvelopeOrd {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for EnvelopeOrd {}
impl PartialOrd for EnvelopeOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EnvelopeOrd {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// Engine construction options shared by every substrate.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Switch model whose CPU factor scales measured host time.
    pub model: SwitchModel,
    /// Latency used when two communicating devices share no direct
    /// link.
    pub fallback_latency_ns: u64,
    /// Build per-device verifiers (LEC tables + initial counting)
    /// concurrently with scoped threads. The resulting [`Report`] is
    /// identical to sequential init — construction is deterministic
    /// per device and initial envelopes are enqueued in device order —
    /// but wall-clock burst-init time drops on multi-core hosts.
    pub parallel_init: bool,
    /// Telemetry handle shared by the engine, its verifiers and (for
    /// fault substrates) the transport. Defaults to the disabled
    /// handle, under which every record call is a single branch — no
    /// locks on the disabled path.
    pub telemetry: Arc<Telemetry>,
    /// Predicate backend every verifier runs on. [`BackendKind::Auto`]
    /// resolves at engine construction from the network (interval
    /// backends require a destination-prefix-only workload) and
    /// [`EngineConfig::update_rate_hint`].
    pub backend: BackendKind,
    /// Expected number of rule updates in the upcoming window; the
    /// `Auto` heuristic picks Delta-net at or above
    /// [`tulkun_predicate::AUTO_RATE_THRESHOLD`] on IP-only workloads.
    pub update_rate_hint: f64,
    /// Build a verifier for *every* topology device, not only those
    /// with tasks in the initial plan. The threaded substrate cannot
    /// add device threads after spawn, so runtime intent installs
    /// ([`ThreadedEngine::install_intent`]) that pull in a previously
    /// task-less device need its thread to already exist. Off by
    /// default: idle verifiers cost init time on large topologies.
    pub all_devices: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            model: SwitchModel::MELLANOX,
            fallback_latency_ns: 10_000,
            parallel_init: false,
            telemetry: Telemetry::disabled(),
            backend: BackendKind::Bdd,
            update_rate_hint: 0.0,
            all_devices: false,
        }
    }
}

/// Causal trace id of the initial burst wave (every later internal
/// event allocates a fresh id starting at [`FIRST_EVENT_TRACE`]).
const INIT_TRACE: u64 = 1;
/// First trace id handed to post-burst events.
const FIRST_EVENT_TRACE: u64 = 2;

/// Span name for one handled DVM envelope, by payload kind.
fn dvm_span_name(payload: &Payload) -> &'static str {
    match payload {
        Payload::Update { .. } => "dvm.update",
        Payload::Subscribe { .. } => "dvm.subscribe",
        Payload::Ack { .. } => "dvm.ack",
    }
}

/// One constructed device verifier with its init byproducts.
struct BuiltVerifier {
    dev: DeviceId,
    verifier: DeviceVerifier,
    init_out: Vec<Envelope>,
    /// Scaled init time.
    init_ns: u64,
}

/// Builds one `DeviceVerifier` per participating device, timing each
/// construction (LEC build + initial counting) as init cost. With
/// `parallel` set, devices build concurrently under scoped threads —
/// the sharded [`LecCache`] is used directly (per-shard locking, no
/// global mutex), and results are returned in device order so
/// downstream scheduling stays deterministic.
fn plan_vcfg(plan: &CountingPlan) -> VerifierConfig {
    VerifierConfig {
        n_exprs: plan.exprs.len(),
        track_escapes: plan.track_escapes,
        reduce: plan.reduce,
        dest_mode: Default::default(),
    }
}

fn build_verifiers(
    net: &Network,
    plan: &CountingPlan,
    packet_space: &PortablePred,
    cfg: &EngineConfig,
    lec_cache: &LecCache,
) -> Vec<BuiltVerifier> {
    let vcfg = plan_vcfg(plan);
    let mut by_dev: BTreeMap<DeviceId, Vec<NodeTask>> = BTreeMap::new();
    for t in &plan.tasks {
        by_dev.entry(t.dev).or_default().push(t.clone());
    }
    if cfg.all_devices {
        // Idle verifiers (no tasks) for every device the plan skipped,
        // so runtime intents can task them later.
        for d in 0..net.topology.num_devices() as u32 {
            by_dev.entry(DeviceId(d)).or_default();
        }
    }

    // Resolve the backend once for the whole engine: every verifier of
    // one run uses the same encoding (wire bytes are backend-neutral,
    // so this is a pure performance choice).
    let kind = cfg
        .backend
        .resolve(network_ip_only(net), cfg.update_rate_hint);

    let tel = &cfg.telemetry;
    let build_one = |dev: DeviceId, tasks: Vec<NodeTask>, worker: u64| -> BuiltVerifier {
        let begin = tel.host_tick();
        let start = Instant::now();
        let cached = lec_cache.get(dev);
        let mut v = DeviceVerifier::builder(
            dev,
            net.layout,
            net.fib(dev).clone(),
            packet_space,
            vcfg.clone(),
        )
        .backend(kind)
        .tasks(tasks)
        .maybe_lecs(cached.as_deref().map(Vec::as_slice))
        .telemetry(tel.clone())
        .build();
        if cached.is_none() {
            lec_cache.insert(dev, v.export_lecs());
        }
        // The whole initial burst is one causal wave.
        v.set_trace(INIT_TRACE);
        let mut init_out = Vec::new();
        v.init(&mut init_out);
        let host_ns = start.elapsed().as_nanos() as u64;
        // Per-device init span, attributed to its worker (aux) so the
        // EXPERIMENTS parallel-init entry can read actual occupancy.
        tel.span_aux(
            dev,
            "init.build",
            "init",
            begin,
            host_ns.max(1),
            INIT_TRACE,
            worker,
        );
        let init_ns = cfg.model.scale_ns(host_ns);
        BuiltVerifier {
            dev,
            verifier: v,
            init_out,
            init_ns,
        }
    };

    if !cfg.parallel_init {
        return by_dev
            .into_iter()
            .map(|(dev, tasks)| build_one(dev, tasks, 0))
            .collect();
    }

    // Worker pool sized to the host, not one thread per device: devices
    // outnumber cores on every evaluation topology, and per-device
    // spawns serialize into pure overhead on small hosts.
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(by_dev.len().max(1));
    let jobs: Mutex<Vec<(DeviceId, Vec<NodeTask>)>> = Mutex::new(by_dev.into_iter().collect());
    let results: Mutex<Vec<BuiltVerifier>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in 0..workers {
            let jobs = &jobs;
            let results = &results;
            let build_one = &build_one;
            s.spawn(move || {
                while let Some((dev, tasks)) = {
                    let mut q = jobs.lock().unwrap();
                    q.pop()
                } {
                    let built = build_one(dev, tasks, w as u64);
                    results.lock().unwrap().push(built);
                }
            });
        }
    });
    let mut out = results.into_inner().unwrap();
    out.sort_by_key(|b| b.dev);
    out
}

/// The outcome of one driven round (burst, incremental update, link
/// event or fault-scene swap).
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Substrate completion (quiescence) time in ns.
    pub completion_ns: u64,
    /// Messages delivered this round.
    pub messages: usize,
    /// Bytes on the wire this round.
    pub bytes: u64,
}

/// The generic single-driver engine: owns the verifiers, a [`Clock`],
/// a [`Transport`] and the [`RuntimeStats`]; every deterministic
/// substrate is an instantiation of this one loop.
pub struct Engine<T: Transport, C: Clock> {
    plan: CountingPlan,
    verifiers: BTreeMap<DeviceId, DeviceVerifier>,
    transport: T,
    clock: C,
    stats: RuntimeStats,
    watermark: u64,
    tel: Arc<Telemetry>,
    /// Next causal trace id handed to an injected internal event.
    next_trace: u64,
    /// Topology generation (0 = pre-churn). Stamped into every envelope
    /// by the verifiers; stale-epoch arrivals are fenced off.
    epoch: u64,
    /// Cumulative live-churn state (down links/devices).
    churn: ChurnState,
    /// Topology churn events applied so far (the epoch also advances
    /// on intent installs/removals, so freshness marking keys off this
    /// counter instead).
    churn_events: u64,
    /// Devices currently quarantined (down): no deliveries, no
    /// recounting.
    quarantined: BTreeSet<DeviceId>,
    /// Old-plan nodes stranded on quarantined devices, reported
    /// `Unreachable`.
    unreachable: BTreeMap<NodeId, DeviceId>,
    /// The runtime intent store: the base plan is intent 0; installs
    /// intern their DPVNet slices against it.
    store: IntentStore,
    /// Intent id → the epoch whose fence degraded it (freshness
    /// attribution; cleared when a later fence revives the intent).
    degraded_epochs: BTreeMap<u64, u64>,
    /// Network snapshot kept current across [`Engine::stage_batch`], so
    /// intent compilation and lazy verifier builds see live FIBs.
    net: Network,
    /// Compiled base packet space, for lazily built verifiers.
    packet_space: PortablePred,
    /// Verifier profile shared by every intent of this engine.
    vcfg: VerifierConfig,
    /// Resolved predicate backend (every verifier of one run uses the
    /// same encoding).
    kind: BackendKind,
}

impl<T: Transport, C: Clock> Engine<T, C> {
    /// Builds an engine over a network snapshot and a counting plan,
    /// sharing a per-device LEC cache across engines. Verifier
    /// construction is timed as init cost; call [`Engine::burst`] to
    /// run the initial exchange to quiescence.
    pub fn new_cached(
        net: &Network,
        plan: &CountingPlan,
        ps: &PacketSpace,
        cfg: &EngineConfig,
        lec_cache: &LecCache,
        mut transport: T,
        mut clock: C,
    ) -> Engine<T, C> {
        let packet_space = verify::compile_packet_space(&net.layout, ps);
        let built = build_verifiers(net, plan, &packet_space, cfg, lec_cache);
        let mut verifiers = BTreeMap::new();
        let mut stats = RuntimeStats::default();
        for b in built {
            let st = stats.per_device.entry(b.dev).or_default();
            st.init_ns = b.init_ns;
            st.bdd_nodes = b.verifier.bdd_nodes();
            clock.set_free_at(b.dev, b.init_ns);
            for env in b.init_out {
                transport.send(b.dev, b.init_ns, env);
            }
            verifiers.insert(b.dev, b.verifier);
        }
        Engine {
            plan: plan.clone(),
            verifiers,
            transport,
            clock,
            stats,
            watermark: 0,
            tel: cfg.telemetry.clone(),
            next_trace: FIRST_EVENT_TRACE,
            epoch: 0,
            churn: ChurnState::new(),
            churn_events: 0,
            quarantined: BTreeSet::new(),
            unreachable: BTreeMap::new(),
            store: IntentStore::with_base(plan.clone(), ps.clone(), None),
            degraded_epochs: BTreeMap::new(),
            net: net.clone(),
            packet_space,
            vcfg: plan_vcfg(plan),
            kind: cfg
                .backend
                .resolve(network_ip_only(net), cfg.update_rate_hint),
        }
    }

    /// Allocates a fresh causal trace id for one injected event.
    fn alloc_trace(&mut self) -> u64 {
        let t = self.next_trace;
        self.next_trace += 1;
        t
    }

    /// Delivers messages until the transport runs dry (quiescence).
    fn run(&mut self) -> RunOutcome {
        let mut out = RunOutcome::default();
        let mut last_finish = self.watermark;
        while let Some((arrival, env)) = self.transport.recv() {
            let dev = env.to;
            if self.quarantined.contains(&dev) {
                continue;
            }
            let Some(v) = self.verifiers.get_mut(&dev) else {
                continue;
            };
            let begin_tick = self.tel.host_tick();
            let wall = Instant::now();
            let bytes_before = v.stats.bytes_sent;
            let mut replies = Vec::new();
            v.handle(&env, &mut replies);
            let host_ns = wall.elapsed().as_nanos() as u64;
            let sent = v.stats.bytes_sent - bytes_before;
            let bdd_nodes = v.bdd_nodes();
            let span = self.clock.charge(dev, arrival, host_ns);
            if self.tel.is_enabled() {
                // Host-tick timeline; the substrate's virtual begin
                // time rides in aux for offline re-keying.
                self.tel.span_aux(
                    dev,
                    dvm_span_name(&env.payload),
                    "dvm",
                    begin_tick,
                    host_ns.max(1),
                    env.trace,
                    span.begin,
                );
                self.tel.observe(dev, &HANDLE_NS, span.cpu_ns);
            }
            last_finish = last_finish.max(span.finish);
            out.messages += 1;
            out.bytes += env.wire_bytes() as u64;
            self.stats.messages += 1;
            self.stats.bytes += env.wire_bytes() as u64;
            self.stats.msg_ns_samples.push(span.cpu_ns);
            self.stats
                .per_device
                .entry(dev)
                .or_default()
                .absorb_message(span.cpu_ns, sent, bdd_nodes);
            for env in replies {
                self.transport.send(dev, span.finish, env);
            }
        }
        self.watermark = last_finish;
        out.completion_ns = last_finish;
        if let Some(f) = self.transport.fault_stats() {
            self.stats.fault = f;
        }
        out
    }

    /// The burst phase: all FIBs arrive at t=0 (already ingested during
    /// construction); runs the initial counting to quiescence.
    pub fn burst(&mut self) -> RunOutcome {
        self.run()
    }

    /// One incremental rule update: a one-element batch through the
    /// single update code path ([`Engine::apply_batch`]).
    pub fn incremental(&mut self, update: &RuleUpdate) -> RunOutcome {
        self.apply_batch(std::slice::from_ref(update))
    }

    /// Applies a burst of rule updates: the batch is coalesced per
    /// device ([`UpdateBatch::coalesced`]), each affected device applies
    /// its whole sub-batch with one LEC delta and one recompute per
    /// node, and the resulting coalesced UPDATEs are driven to
    /// quiescence. All updates arrive "now" (relative clock reset to 0
    /// so results are per-burst times).
    pub fn apply_batch(&mut self, updates: &[RuleUpdate]) -> RunOutcome {
        self.stage_batch(updates);
        let last_span = self.watermark;
        let mut r = self.run();
        r.completion_ns = r.completion_ns.max(last_span);
        r
    }

    /// Stages a burst of rule updates *without* driving the exchange:
    /// the coalesced per-device batches are applied and their DVM
    /// messages enqueued, but delivery does not start — so a churn
    /// event or a crash can be injected while those messages are still
    /// in flight. Follow with [`Engine::run_staged`] (or any driven
    /// round) to drain.
    pub fn stage_batch(&mut self, updates: &[RuleUpdate]) {
        self.reset_time();
        let trace = self.alloc_trace();
        let batch: UpdateBatch = updates.iter().cloned().collect();
        // Keep the network snapshot current: intent compilation and
        // lazy verifier builds must see the live FIBs.
        self.net.apply_batch(&batch);
        if self.tel.journal_on() {
            let n = updates.len();
            let first = batch
                .coalesced()
                .first()
                .map(|(d, _)| *d)
                .unwrap_or(DeviceId(0));
            self.tel.journal(
                JournalKind::BatchApplied,
                first,
                self.epoch,
                trace,
                None,
                || format!("{n} updates"),
            );
        }
        let mut last_span = 0;
        for (dev, ops) in batch.coalesced() {
            // Quarantine blocks *protocol* deliveries, not the
            // device's own FIB: a quarantined verifier still folds in
            // rule updates (it owns no plan nodes, so nothing is
            // announced), so a later `DeviceUp` revives it against the
            // current data plane — mirroring the reference session.
            let Some(v) = self.verifiers.get_mut(&dev) else {
                continue;
            };
            let wall = Instant::now();
            let mut replies = Vec::new();
            v.set_trace(trace);
            v.handle_fib_batch(&ops, &mut replies);
            let span = self.clock.charge(dev, 0, wall.elapsed().as_nanos() as u64);
            self.stats.per_device.entry(dev).or_default().busy_ns += span.cpu_ns;
            last_span = last_span.max(span.finish);
            for env in replies {
                self.transport.send(dev, span.finish, env);
            }
        }
        // Remember the staging high-water mark so a later `run` still
        // reports a completion time covering the staged work.
        self.watermark = last_span;
    }

    /// Drives staged (or otherwise in-flight) messages to quiescence.
    pub fn run_staged(&mut self) -> RunOutcome {
        self.run()
    }

    /// A link failure/recovery event delivered to both endpoints at
    /// t=0.
    pub fn link_event(&mut self, a: DeviceId, b: DeviceId, up: bool) -> RunOutcome {
        self.reset_time();
        let trace = self.alloc_trace();
        self.tel
            .journal(JournalKind::LinkEvent, a, self.epoch, trace, None, || {
                let dir = if up { "up" } else { "down" };
                format!("link-{dir} d{}-d{}", a.0, b.0)
            });
        for (x, y) in [(a, b), (b, a)] {
            let Some(v) = self.verifiers.get_mut(&x) else {
                continue;
            };
            let wall = Instant::now();
            let mut replies = Vec::new();
            v.set_trace(trace);
            v.handle_link_event(y, up, &mut replies);
            let span = self.clock.charge(x, 0, wall.elapsed().as_nanos() as u64);
            for env in replies {
                self.transport.send(x, span.finish, env);
            }
        }
        self.run()
    }

    /// Swaps every verifier to a fault-scene task view (after
    /// link-state flooding, §6) and recounts. `flood_ns` models the
    /// flooding delay added to the completion time.
    pub fn apply_scene(&mut self, tasks: &[NodeTask], flood_ns: u64) -> RunOutcome {
        self.reset_time();
        let trace = self.alloc_trace();
        if self.tel.journal_on() {
            let n = tasks.len();
            let first = tasks.first().map(|t| t.dev).unwrap_or(DeviceId(0));
            self.tel.journal(
                JournalKind::SceneApplied,
                first,
                self.epoch,
                trace,
                None,
                || format!("fault-scene recount over {n} tasks"),
            );
        }
        let mut by_dev: BTreeMap<DeviceId, Vec<NodeTask>> = BTreeMap::new();
        for t in tasks {
            by_dev.entry(t.dev).or_default().push(t.clone());
        }
        for (dev, tasks) in by_dev {
            let Some(v) = self.verifiers.get_mut(&dev) else {
                continue;
            };
            let wall = Instant::now();
            let mut replies = Vec::new();
            v.set_trace(trace);
            v.set_tasks(tasks, &mut replies);
            let span = self
                .clock
                .charge(dev, flood_ns, wall.elapsed().as_nanos() as u64);
            for env in replies {
                self.transport.send(dev, span.finish, env);
            }
        }
        let mut r = self.run();
        r.completion_ns = r.completion_ns.max(flood_ns);
        r
    }

    /// Crashes and restarts one device's verification agent (§8: the
    /// agent is a process beside the FIB agent — it can die without the
    /// switch losing its FIB). The crashed verifier loses all soft
    /// counting state and recounts from scratch; every *other* verifier
    /// replays its durable protocol state toward the restarted device
    /// ([`DeviceVerifier::replay_for_restart`]), and the exchange is
    /// driven to quiescence — the run recovers instead of aborting, and
    /// the Report re-converges to the pre-crash fixpoint.
    pub fn crash_restart(&mut self, dev: DeviceId) -> RunOutcome {
        self.reset_time();
        let trace = self.alloc_trace();
        self.tel.journal(
            JournalKind::CrashRestart,
            dev,
            self.epoch,
            trace,
            None,
            || format!("verification agent on d{} crashed and restarted", dev.0),
        );
        // Pending envelopes addressed to the dead agent (delayed or
        // duplicated copies included) must not land on the fresh state;
        // neighbor replays rebuild everything they carried.
        self.transport.purge_for_restart(dev);
        {
            let Some(v) = self.verifiers.get_mut(&dev) else {
                return RunOutcome::default();
            };
            let wall = Instant::now();
            let mut replies = Vec::new();
            v.set_trace(trace);
            v.reboot(&mut replies);
            let span = self.clock.charge(dev, 0, wall.elapsed().as_nanos() as u64);
            self.stats.per_device.entry(dev).or_default().busy_ns += span.cpu_ns;
            for env in replies {
                self.transport.send(dev, span.finish, env);
            }
        }
        let others: Vec<DeviceId> = self
            .verifiers
            .keys()
            .copied()
            .filter(|d| *d != dev)
            .collect();
        for nb in others {
            let v = self.verifiers.get_mut(&nb).unwrap();
            let wall = Instant::now();
            let mut replays = Vec::new();
            v.set_trace(trace);
            v.replay_for_restart(dev, &mut replays);
            if replays.is_empty() {
                continue;
            }
            let span = self.clock.charge(nb, 0, wall.elapsed().as_nanos() as u64);
            self.stats.per_device.entry(nb).or_default().busy_ns += span.cpu_ns;
            for env in replays {
                self.transport.send(nb, span.finish, env);
            }
        }
        self.stats.crashes_recovered += 1;
        self.run()
    }

    fn reset_time(&mut self) {
        self.watermark = 0;
        self.clock.reset();
    }

    /// The current topology generation (0 until the first churn event).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Applies one live topology churn event and drives re-convergence
    /// to quiescence: folds the event into the cumulative churn state,
    /// incrementally re-plans against the post-churn topology (`base` is
    /// the original topology, `inv` the invariant the running plan was
    /// compiled from), bumps the epoch fence — the transport drops every
    /// in-flight envelope, verifiers discard stragglers from superseded
    /// epochs — applies the per-device task diff, and has every
    /// reachable device re-announce its durable state under the new
    /// epoch.
    ///
    /// `DeviceDown` quarantines its device (no deliveries, old nodes
    /// reported `Unreachable`); `DeviceUp` lifts the quarantine, wipes
    /// the revived verifier's soft counting state and re-tasks it.
    /// Every *live* intent is re-planned under the same fence
    /// ([`IntentStore::replan_all_for_churn`]): unaffected slices keep
    /// their node ids and ship zero tasks, slices the churned topology
    /// cannot host degrade per-intent instead of rejecting the event,
    /// and parked installs get their bounded retry against the new
    /// epoch. Only a failure to re-plan the *base* invariant leaves the
    /// engine on the old epoch.
    pub fn apply_topology_event(
        &mut self,
        ev: &TopologyEvent,
        base: &Topology,
        inv: &Invariant,
    ) -> Result<RunOutcome, PlanError> {
        self.apply_topology_event_inner(ev, base, inv)
            .map(|(r, _, _)| r)
    }

    fn apply_topology_event_inner(
        &mut self,
        ev: &TopologyEvent,
        base: &Topology,
        inv: &Invariant,
    ) -> Result<(RunOutcome, usize, usize), PlanError> {
        let mut churn = self.churn.clone();
        if !churn.apply(ev) {
            let n = self.plan.tasks.len();
            return Ok((RunOutcome::default(), n, n));
        }
        let replan_begin = self.tel.host_tick();
        let replan_wall = Instant::now();
        // Transactional: an Err re-planning the base invariant happens
        // before the store mutates anything.
        let replan = self
            .store
            .replan_all_for_churn(base, Some(inv), &churn, None)?;
        self.reset_time();
        self.churn = churn;
        self.epoch += 1;
        let epoch = self.epoch;
        let trace = self.alloc_trace();
        if self.tel.is_enabled() {
            let first = self.verifiers.keys().next().copied().unwrap_or(DeviceId(0));
            self.tel.span_aux(
                first,
                "churn.replan",
                "churn",
                replan_begin,
                (replan_wall.elapsed().as_nanos() as u64).max(1),
                trace,
                epoch,
            );
            self.tel.count(first, "tulkun_epoch_bumps_total", 1);
        }
        self.tel.journal(
            JournalKind::TopologyChurn,
            ev.primary_device(),
            epoch,
            trace,
            None,
            || ev.describe(),
        );
        self.tel.journal(
            JournalKind::EpochFence,
            ev.primary_device(),
            epoch,
            trace,
            None,
            || format!("fence to epoch {epoch} (churn)"),
        );
        verify::journal_replan_transitions(
            &self.tel,
            &mut self.degraded_epochs,
            &replan,
            ev.primary_device(),
            epoch,
            trace,
            &ev.describe(),
        );
        for v in self.verifiers.values_mut() {
            v.set_epoch(epoch);
        }
        match ev {
            TopologyEvent::DeviceDown(d) => {
                self.quarantined.insert(*d);
                self.tel.count(*d, "tulkun_quarantined_total", 1);
            }
            TopologyEvent::DeviceUp(d) => {
                // Revived: soft state from before the outage is
                // meaningless under the new plan — clean slate.
                self.quarantined.remove(d);
                if let Some(v) = self.verifiers.get_mut(d) {
                    let all = v.node_ids();
                    v.remove_nodes(&all);
                }
            }
            TopologyEvent::LinkDown(..) | TopologyEvent::LinkUp(..) => {}
        }
        // Fence *before* any new-epoch send: everything in flight is
        // superseded; re-announcement repairs what it carried.
        self.transport.epoch_fence(epoch);
        self.transport.set_topology(&replan.topology);
        for (dev, gone) in &replan.removed {
            if let Some(v) = self.verifiers.get_mut(dev) {
                v.remove_nodes(gone);
            }
        }
        // New nodes import their context's packet space; compile each
        // referenced context once.
        let mut spaces: BTreeMap<usize, PortablePred> = BTreeMap::new();
        for groups in replan.changed.values() {
            for g in groups {
                if let Some(c) = g.ctx {
                    spaces.entry(c).or_insert_with(|| {
                        verify::compile_packet_space(&self.net.layout, self.store.context_space(c))
                    });
                }
            }
        }
        // Build verifiers lazily for devices the re-plan pulls in (e.g.
        // a detour through a device no prior plan tasked).
        let missing: Vec<DeviceId> = replan
            .changed
            .keys()
            .filter(|d| !self.verifiers.contains_key(d))
            .copied()
            .collect();
        for dev in missing {
            self.build_verifier_lazily(dev, trace);
        }
        for (dev, groups) in &replan.changed {
            let v = self.verifiers.get_mut(dev).expect("built above");
            let begin = self.tel.host_tick();
            let wall = Instant::now();
            let mut replies = Vec::new();
            v.set_trace(trace);
            for g in groups {
                match g.ctx {
                    None => v.set_tasks(g.tasks.clone(), &mut replies),
                    Some(c) => v.install_tasks(g.tasks.clone(), &spaces[&c], &mut replies),
                }
            }
            let host_ns = wall.elapsed().as_nanos() as u64;
            let span = self.clock.charge(*dev, 0, host_ns);
            self.stats.per_device.entry(*dev).or_default().busy_ns += span.cpu_ns;
            if self.tel.is_enabled() {
                self.tel.span_aux(
                    *dev,
                    "churn.retask",
                    "churn",
                    begin,
                    host_ns.max(1),
                    trace,
                    epoch,
                );
            }
            for env in replies {
                self.transport.send(*dev, span.finish, env);
            }
        }
        // Every reachable device re-announces its durable state under
        // the new epoch — including unchanged devices, whose in-flight
        // messages the fence just dropped.
        let devs: Vec<DeviceId> = self
            .verifiers
            .keys()
            .copied()
            .filter(|d| !self.quarantined.contains(d))
            .collect();
        for dev in devs {
            let v = self.verifiers.get_mut(&dev).unwrap();
            let wall = Instant::now();
            let mut replies = Vec::new();
            v.set_trace(trace);
            v.reannounce(&mut replies);
            if replies.is_empty() {
                continue;
            }
            let span = self.clock.charge(dev, 0, wall.elapsed().as_nanos() as u64);
            self.stats.per_device.entry(dev).or_default().busy_ns += span.cpu_ns;
            for env in replies {
                self.transport.send(dev, span.finish, env);
            }
        }
        self.unreachable.retain(|_, d| self.churn.is_down(*d));
        for (n, d) in &replan.unreachable {
            self.unreachable.insert(*n, *d);
        }
        self.churn_events += 1;
        if let Some(p) = self.store.base_plan() {
            self.plan = p.clone();
        }
        let r = self.run();
        Ok((r, replan.total_nodes, replan.reused_nodes))
    }

    /// Like [`Engine::apply_topology_event`], also returning the
    /// re-plan's reuse statistics (for the churn ablation bench).
    pub fn apply_topology_event_with_delta(
        &mut self,
        ev: &TopologyEvent,
        base: &Topology,
        inv: &Invariant,
    ) -> Result<(RunOutcome, usize, usize), PlanError> {
        self.apply_topology_event_inner(ev, base, inv)
    }

    /// Builds one verifier after construction time, for a device a
    /// later intent or churn re-plan pulls into the plan (no LEC cache:
    /// a late-joining device builds its table once).
    fn build_verifier_lazily(&mut self, dev: DeviceId, trace: u64) {
        let begin = self.tel.host_tick();
        let wall = Instant::now();
        let mut v = DeviceVerifier::builder(
            dev,
            self.net.layout,
            self.net.fib(dev).clone(),
            &self.packet_space,
            self.vcfg.clone(),
        )
        .backend(self.kind)
        .tasks(Vec::new())
        .telemetry(self.tel.clone())
        .build();
        v.set_trace(trace);
        let mut out = Vec::new();
        v.init(&mut out);
        let host_ns = wall.elapsed().as_nanos() as u64;
        let span = self.clock.charge(dev, 0, host_ns);
        let st = self.stats.per_device.entry(dev).or_default();
        st.init_ns = span.cpu_ns;
        st.bdd_nodes = v.bdd_nodes();
        if self.tel.is_enabled() {
            self.tel
                .span_aux(dev, "init.build", "init", begin, host_ns.max(1), trace, 0);
        }
        for env in out {
            self.transport.send(dev, span.finish, env);
        }
        self.verifiers.insert(dev, v);
    }

    /// Evaluates the invariant at the DPVNet sources. Takes `&mut self`
    /// because result export runs through each device's BDD manager.
    /// After a churn event the report also carries per-node freshness
    /// markers and the quarantined-device list.
    pub fn report(&mut self) -> Report {
        let verifiers = &mut self.verifiers;
        let mut r = verify::evaluate_intents(&self.store, |dev, node| {
            verifiers
                .get_mut(&dev)
                .map(|v| v.node_result(node, None))
                .unwrap_or_default()
        });
        if self.churn_events > 0 {
            verify::mark_freshness_store(
                &mut r,
                &self.store,
                &self.unreachable,
                self.quarantined.iter().copied(),
                &BTreeMap::new(),
                &self.degraded_epochs,
            );
        }
        r
    }

    /// The runtime intent store (read-only).
    pub fn intents(&self) -> &IntentStore {
        &self.store
    }

    /// Compiles `inv` against the engine's topology and installs it as
    /// a new runtime intent under an epoch bump: the invariant's DPVNet
    /// slice is interned into the shared node table (nodes other live
    /// intents already installed are reused, not duplicated), only the
    /// devices in the slice are re-tasked, verifiers are lazily built
    /// for devices the slice pulls in, and the exchange is driven to
    /// quiescence. Returns the new id, the applied delta (its
    /// `reused_nodes` / `touched_devices` evidence slicing locality)
    /// and the driven round.
    pub fn install_intent(
        &mut self,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta, RunOutcome), PlanError> {
        self.install_intent_inner(None, name, inv)
    }

    /// [`Engine::install_intent`] under a caller-chosen id — for
    /// deterministic replay (a hot backend swap re-building the engine
    /// must keep every live intent's id stable).
    pub fn install_intent_as(
        &mut self,
        id: IntentId,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta, RunOutcome), PlanError> {
        self.install_intent_inner(Some(id), name, inv)
    }

    fn install_intent_inner(
        &mut self,
        id: Option<IntentId>,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta, RunOutcome), PlanError> {
        let cp = if self.churn.is_quiet() {
            let plan = Planner::new(&self.net.topology).plan(inv)?;
            let PlanKind::Counting(cp) = &plan.kind else {
                return Err(PlanError::Unsupported(
                    "runtime intents require a counting plan (local-contract \
                     behaviors have no DPVNet slice to install)"
                        .to_string(),
                ));
            };
            cp.clone()
        } else {
            // The install races an active topology fence: plan against
            // the effective (post-churn) topology; a slice it cannot
            // host is *parked* for bounded retry on the next fence
            // instead of rejected.
            let effective = self.churn.apply_to(&self.net.topology);
            match plan_intent_on(&effective, inv, &self.churn, None) {
                Ok(cp) => cp,
                Err(e) => {
                    let id = self.store.park(id, name, inv.clone())?;
                    let epoch = self.epoch;
                    self.tel.journal(
                        JournalKind::IntentParked,
                        DeviceId(0),
                        epoch,
                        0,
                        Some(id.0),
                        || format!("parked behind fence @epoch {epoch}: {e}"),
                    );
                    return Ok((id, IntentDelta::default(), RunOutcome::default()));
                }
            }
        };
        let (id, delta) =
            self.store
                .install(id, name, Some(inv.clone()), cp, inv.packet_space.clone())?;
        let space = verify::compile_packet_space(
            &self.net.layout,
            delta.space.as_ref().unwrap_or(&inv.packet_space),
        );
        self.reset_time();
        let trace = self.alloc_trace();
        // Build verifiers lazily for devices the slice pulls in.
        let missing: Vec<DeviceId> = delta
            .changed
            .keys()
            .filter(|d| !self.verifiers.contains_key(d))
            .copied()
            .collect();
        for dev in missing {
            self.build_verifier_lazily(dev, trace);
        }
        let r = self.fence_and_apply(&delta, Some(&space), trace, "intent.install");
        let dev = delta.changed.keys().next().copied().unwrap_or(DeviceId(0));
        let name = name.to_string();
        self.tel.journal(
            JournalKind::IntentInstalled,
            dev,
            self.epoch,
            trace,
            Some(id.0),
            || format!("intent {name:?} installed"),
        );
        self.tel
            .gauge_set(dev, "tulkun_intent_count", self.store.live().count() as i64);
        Ok((id, delta, r))
    }

    /// Removes a live intent under the same epoch fence as
    /// [`Engine::install_intent`]: only nodes no surviving intent owns
    /// are uninstalled (shared tasks stay — cheaper by exactly the
    /// dedup), and the exchange re-converges.
    pub fn remove_intent(&mut self, id: IntentId) -> Result<(IntentDelta, RunOutcome), PlanError> {
        // A parked or degraded intent owns no on-device state: removing
        // it drains the bookkeeping without a fence.
        let no_footprint =
            self.store.is_parked(id) || self.store.get(id).is_some_and(|i| i.is_degraded());
        let delta = self.store.remove(id)?;
        self.degraded_epochs.remove(&id.0);
        let (r, trace) = if no_footprint {
            (RunOutcome::default(), 0)
        } else {
            self.reset_time();
            let trace = self.alloc_trace();
            (
                self.fence_and_apply(&delta, None, trace, "intent.remove"),
                trace,
            )
        };
        let dev = delta
            .removed
            .keys()
            .chain(delta.changed.keys())
            .next()
            .copied()
            .unwrap_or(DeviceId(0));
        self.tel.journal(
            JournalKind::IntentRemoved,
            dev,
            self.epoch,
            trace,
            Some(id.0),
            || format!("intent {} removed", id.0),
        );
        self.tel
            .gauge_set(dev, "tulkun_intent_count", self.store.live().count() as i64);
        Ok((delta, r))
    }

    /// Bumps the epoch fence, applies an intent delta's removals and
    /// task changes (`space` is the base packet space for new nodes —
    /// `None` for removals, which never create nodes), re-announces
    /// durable state on every reachable device and drives the exchange
    /// to quiescence.
    fn fence_and_apply(
        &mut self,
        delta: &IntentDelta,
        space: Option<&PortablePred>,
        trace: u64,
        span_name: &'static str,
    ) -> RunOutcome {
        self.epoch += 1;
        let epoch = self.epoch;
        if self.tel.is_enabled() {
            let first = self.verifiers.keys().next().copied().unwrap_or(DeviceId(0));
            self.tel.count(first, "tulkun_epoch_bumps_total", 1);
        }
        if self.tel.journal_on() {
            let first = delta
                .changed
                .keys()
                .chain(delta.removed.keys())
                .next()
                .copied()
                .unwrap_or(DeviceId(0));
            self.tel
                .journal(JournalKind::EpochFence, first, epoch, trace, None, || {
                    format!("fence to epoch {epoch} (intent churn)")
                });
        }
        for v in self.verifiers.values_mut() {
            v.set_epoch(epoch);
        }
        // Fence *before* any new-epoch send: everything in flight is
        // superseded; re-announcement repairs what it carried.
        self.transport.epoch_fence(epoch);
        for (dev, gone) in &delta.removed {
            if let Some(v) = self.verifiers.get_mut(dev) {
                v.remove_nodes(gone);
            }
        }
        for (dev, tasks) in &delta.changed {
            let v = self.verifiers.get_mut(dev).expect("verifier built above");
            let begin = self.tel.host_tick();
            let wall = Instant::now();
            let mut replies = Vec::new();
            v.set_trace(trace);
            match space {
                Some(sp) => v.install_tasks(tasks.clone(), sp, &mut replies),
                None => v.set_tasks(tasks.clone(), &mut replies),
            }
            let host_ns = wall.elapsed().as_nanos() as u64;
            let span = self.clock.charge(*dev, 0, host_ns);
            self.stats.per_device.entry(*dev).or_default().busy_ns += span.cpu_ns;
            if self.tel.is_enabled() {
                self.tel.span_aux(
                    *dev,
                    span_name,
                    "intent",
                    begin,
                    host_ns.max(1),
                    trace,
                    epoch,
                );
            }
            for env in replies {
                self.transport.send(*dev, span.finish, env);
            }
        }
        // Every reachable device re-announces its durable state under
        // the new epoch — including unchanged devices, whose in-flight
        // messages the fence just dropped.
        let devs: Vec<DeviceId> = self
            .verifiers
            .keys()
            .copied()
            .filter(|d| !self.quarantined.contains(d))
            .collect();
        for dev in devs {
            let v = self.verifiers.get_mut(&dev).unwrap();
            let wall = Instant::now();
            let mut replies = Vec::new();
            v.set_trace(trace);
            v.reannounce(&mut replies);
            if replies.is_empty() {
                continue;
            }
            let span = self.clock.charge(dev, 0, wall.elapsed().as_nanos() as u64);
            self.stats.per_device.entry(dev).or_default().busy_ns += span.cpu_ns;
            for env in replies {
                self.transport.send(dev, span.finish, env);
            }
        }
        self.run()
    }

    /// The runtime observability surface.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Mutable stats access (to drain per-message samples).
    pub fn stats_mut(&mut self) -> &mut RuntimeStats {
        &mut self.stats
    }

    /// Mutable access to one verifier (used by the replay harness).
    pub fn verifier_mut(&mut self, dev: DeviceId) -> Option<&mut DeviceVerifier> {
        self.verifiers.get_mut(&dev)
    }

    /// The counting plan driving this engine.
    pub fn plan(&self) -> &CountingPlan {
        &self.plan
    }
}

impl<T: Transport, C: Clock> Substrate for Engine<T, C> {
    /// Applies one [`RuntimeEvent`] and drives the exchange to
    /// quiescence. Backend hot-swap lives in the service layer (it
    /// rebuilds the engine), so [`RuntimeEvent::SetBackend`] is
    /// rejected here.
    fn apply_event(&mut self, ev: &RuntimeEvent) -> Result<EventOutcome, PlanError> {
        use RuntimeEvent as E;
        match ev {
            E::Batch(updates) => {
                let r = self.apply_batch(updates);
                Ok(EventOutcome {
                    messages: r.messages,
                    ..EventOutcome::default()
                })
            }
            E::Topology {
                event,
                base,
                invariant,
            } => {
                let r = self.apply_topology_event(event, base, invariant)?;
                Ok(EventOutcome {
                    messages: r.messages,
                    ..EventOutcome::default()
                })
            }
            E::CrashRestart(dev) => {
                let r = self.crash_restart(*dev);
                Ok(EventOutcome {
                    messages: r.messages,
                    ..EventOutcome::default()
                })
            }
            E::SetBackend(_) => Err(PlanError::Unsupported(
                "hot backend swap is a service-layer event (the engine \
                 must be rebuilt); use the verification service"
                    .to_string(),
            )),
            E::InstallIntent { name, invariant } => {
                let (id, delta, r) = self.install_intent(name, invariant)?;
                Ok(EventOutcome {
                    messages: r.messages,
                    intent: Some(id),
                    slice: Some((delta.total_nodes, delta.reused_nodes)),
                    parked: self.store.is_parked(id),
                })
            }
            E::RemoveIntent(id) => {
                let (delta, r) = self.remove_intent(*id)?;
                Ok(EventOutcome {
                    messages: r.messages,
                    intent: Some(*id),
                    slice: Some((delta.total_nodes, delta.reused_nodes)),
                    parked: false,
                })
            }
        }
    }
}

// ---------------------------------------------------------------------
// The concurrent substrate: one OS thread per device.
// ---------------------------------------------------------------------

/// One node's exported counting results.
type NodeResults = Vec<(NodeId, Vec<(PortablePred, Counts)>)>;

enum DeviceMsg {
    Dvm(Envelope),
    /// A coalesced per-device batch of FIB updates, applied with one
    /// LEC delta. Carries the causal trace id of the injected burst.
    FibBatch(Vec<RuleUpdate>, u64),
    Collect(Vec<NodeId>, mpsc::Sender<NodeResults>),
    /// Crash + restart this device's verification agent: drop all soft
    /// counting state and recount from scratch. Carries the trace id of
    /// the recovery wave.
    Reboot(u64),
    /// Replay durable protocol state toward a freshly restarted device,
    /// tagged with the recovery wave's trace id.
    ReplayFor(DeviceId, u64),
    /// One device's share of an epoch bump, applied atomically by its
    /// thread: fence to the new epoch, optionally wipe/swap/remove
    /// tasks, then re-announce durable state (unless quarantined).
    Churn {
        epoch: u64,
        trace: u64,
        /// Task groups to apply in order, when the re-plan changed this
        /// device: `None` re-tasks existing nodes under their current
        /// base packet space; `Some(sp)` installs new nodes counting
        /// over `sp` (their intent context's space).
        groups: Vec<(Option<PortablePred>, Vec<NodeTask>)>,
        /// Old-plan nodes no longer assigned here.
        remove: Vec<NodeId>,
        /// Revived device: drop *all* soft node state first.
        wipe: bool,
        /// Re-announce after applying (false for quarantined devices).
        reannounce: bool,
    },
    #[cfg(test)]
    Crash,
    /// Test-only: block the device thread until the paired sender is
    /// dropped, so watchdog stalls can be staged deterministically.
    #[cfg(test)]
    Hang(mpsc::Receiver<()>),
    Shutdown,
}

/// Quiescence gauge shared by all device threads: a message's outputs
/// are added (and counted) before its own count is released, so the
/// gauge only reaches zero when no message is queued or being
/// processed anywhere.
struct InflightGauge {
    count: AtomicI64,
    zero: Condvar,
    lock: Mutex<()>,
}

impl InflightGauge {
    fn new() -> Arc<InflightGauge> {
        Arc::new(InflightGauge {
            count: AtomicI64::new(0),
            zero: Condvar::new(),
            lock: Mutex::new(()),
        })
    }

    fn add(&self, n: i64) {
        self.count.fetch_add(n, Ordering::SeqCst);
    }

    fn release(&self) {
        if self.count.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.lock.lock().unwrap();
            self.zero.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut guard = self.lock.lock().unwrap();
        while self.count.load(Ordering::SeqCst) != 0 {
            guard = self.zero.wait(guard).unwrap();
        }
    }

    /// Waits for the gauge to reach zero, giving up after `timeout`.
    /// Returns whether quiescence was observed.
    fn wait_zero_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.lock.lock().unwrap();
        while self.count.load(Ordering::SeqCst) != 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _) = self.zero.wait_timeout(guard, deadline - now).unwrap();
            guard = g;
        }
        true
    }
}

/// Per-device progress accounting for the convergence watchdog:
/// messages enqueued toward each device versus messages its thread has
/// processed. A device whose backlog is non-empty while its processed
/// counter stops advancing is stalled (dead, wedged or partitioned) —
/// as opposed to a run that is merely still converging, where some
/// counter always advances between heartbeats.
struct Progress {
    enqueued: BTreeMap<DeviceId, AtomicU64>,
    processed: BTreeMap<DeviceId, AtomicU64>,
}

impl Progress {
    fn new(devs: impl Iterator<Item = DeviceId> + Clone) -> Arc<Progress> {
        Arc::new(Progress {
            enqueued: devs.clone().map(|d| (d, AtomicU64::new(0))).collect(),
            processed: devs.map(|d| (d, AtomicU64::new(0))).collect(),
        })
    }

    fn note_enqueued(&self, dev: DeviceId) {
        if let Some(c) = self.enqueued.get(&dev) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn note_processed(&self, dev: DeviceId) {
        if let Some(c) = self.processed.get(&dev) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot_processed(&self) -> BTreeMap<DeviceId, u64> {
        self.processed
            .iter()
            .map(|(d, c)| (*d, c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Devices with enqueued work their thread has not processed.
    fn lagging(&self) -> Vec<DeviceId> {
        self.enqueued
            .iter()
            .filter(|(d, e)| {
                let done = self
                    .processed
                    .get(d)
                    .map(|c| c.load(Ordering::Relaxed))
                    .unwrap_or(0);
                e.load(Ordering::Relaxed) > done
            })
            .map(|(d, _)| *d)
            .collect()
    }
}

/// Convergence-watchdog tuning for [`ThreadedEngine::wait_quiescent_watched`].
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// How often per-device progress is sampled while waiting.
    pub heartbeat: Duration,
    /// Consecutive heartbeats with zero progress anywhere before the
    /// run is declared stalled. Separates "still converging" (some
    /// counter advances every heartbeat) from "partitioned/dead device"
    /// (backlog exists, nothing advances).
    pub stall_heartbeats: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            heartbeat: Duration::from_millis(100),
            stall_heartbeats: 5,
        }
    }
}

/// The watchdog's verdict on a watched wait.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchdogVerdict {
    /// The run reached quiescence.
    Converged,
    /// No progress for the configured window; `devices` hold unprocessed
    /// backlog (dead, wedged or partitioned device threads).
    Stalled {
        /// Devices with enqueued-but-unprocessed messages at stall time.
        devices: Vec<DeviceId>,
    },
}

/// A device-task panic, surfaced by [`ThreadedEngine::shutdown`].
#[derive(Debug)]
pub struct DevicePanic {
    /// The device whose thread panicked.
    pub device: DeviceId,
    /// The panic payload rendered to a string.
    pub message: String,
}

/// The genuinely concurrent substrate: one OS thread per device
/// verifier, in-order channels for DVM links — the deployment shape of
/// the paper's prototype (one verification agent per switch over TCP).
///
/// Construction, quiescence accounting, stats and report assembly are
/// the runtime layer's; only the driver loop runs on worker threads.
pub struct ThreadedEngine {
    plan: CountingPlan,
    senders: BTreeMap<DeviceId, mpsc::Sender<DeviceMsg>>,
    inflight: Arc<InflightGauge>,
    handles: Vec<(DeviceId, std::thread::JoinHandle<DeviceStats>)>,
    init_stats: RuntimeStats,
    /// Next causal trace id for injected events (init is [`INIT_TRACE`];
    /// injections count up from [`FIRST_EVENT_TRACE`]). Atomic because
    /// `inject_batch` takes `&self`.
    next_trace: AtomicU64,
    /// Topology generation (0 = pre-churn). Atomic so the watchdog and
    /// report paths can read it through `&self`.
    epoch: AtomicU64,
    /// Cumulative live-churn state (down links/devices).
    churn: ChurnState,
    /// Devices currently quarantined: injections skip them and their
    /// old-plan nodes report `Unreachable`.
    quarantined: BTreeSet<DeviceId>,
    /// Old-plan nodes stranded on quarantined devices.
    unreachable: BTreeMap<NodeId, DeviceId>,
    /// Per-device progress counters feeding the convergence watchdog.
    progress: Arc<Progress>,
    /// Devices the watchdog declared stalled (device → epoch at stall);
    /// cleared when a later watched wait converges.
    stalled: Mutex<BTreeMap<DeviceId, u64>>,
    tel: Arc<Telemetry>,
    joined: bool,
    /// The runtime intent store: the base plan is intent 0.
    store: IntentStore,
    /// Topology snapshot for runtime intent compilation (planning is
    /// FIB-independent, so no live FIB copy is needed here).
    topology: Topology,
    /// Header layout for compiling intent packet spaces.
    layout: HeaderLayout,
    /// Intent id → the epoch whose fence degraded it (freshness
    /// attribution; cleared when a later fence revives the intent).
    degraded_epochs: BTreeMap<u64, u64>,
    /// Topology churn events applied so far (the epoch also advances
    /// on intent installs/removals; freshness keys off this counter).
    churn_events: u64,
}

impl ThreadedEngine {
    /// Spawns one verifier thread per participating device and injects
    /// the initial (burst) exchange; call
    /// [`ThreadedEngine::wait_quiescent`] to let it drain.
    pub fn spawn(
        net: &Network,
        plan: &CountingPlan,
        ps: &PacketSpace,
        cfg: &EngineConfig,
        lec_cache: &LecCache,
    ) -> ThreadedEngine {
        let packet_space = verify::compile_packet_space(&net.layout, ps);
        let built = build_verifiers(net, plan, &packet_space, cfg, lec_cache);

        let inflight = InflightGauge::new();
        let progress = Progress::new(built.iter().map(|b| b.dev));
        let mut senders: BTreeMap<DeviceId, mpsc::Sender<DeviceMsg>> = BTreeMap::new();
        let mut receivers: BTreeMap<DeviceId, mpsc::Receiver<DeviceMsg>> = BTreeMap::new();
        for b in &built {
            let (tx, rx) = mpsc::channel();
            senders.insert(b.dev, tx);
            receivers.insert(b.dev, rx);
        }

        let mut init_stats = RuntimeStats::default();
        let mut handles = Vec::new();
        for b in built {
            let BuiltVerifier {
                dev,
                mut verifier,
                init_out,
                init_ns,
            } = b;
            {
                let st = init_stats.per_device.entry(dev).or_default();
                st.init_ns = init_ns;
                st.bdd_nodes = verifier.bdd_nodes();
            }
            let rx = receivers.remove(&dev).expect("receiver");
            let peers = senders.clone();
            let inflight = inflight.clone();
            let progress = progress.clone();
            let model = cfg.model;
            let tel = cfg.telemetry.clone();

            // The initial messages count as in-flight before any thread
            // starts, so quiescence cannot be observed prematurely.
            inflight.add(init_out.len() as i64);
            for env in init_out {
                match peers.get(&env.to) {
                    Some(tx) => {
                        let to = env.to;
                        if tx.send(DeviceMsg::Dvm(env)).is_ok() {
                            progress.note_enqueued(to);
                        } else {
                            inflight.release();
                        }
                    }
                    _ => inflight.release(),
                }
            }

            handles.push((
                dev,
                std::thread::spawn(move || {
                    let mut stats = DeviceStats::default();
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            DeviceMsg::Dvm(env) => {
                                let begin = tel.host_tick();
                                let wall = Instant::now();
                                let bytes_before = verifier.stats.bytes_sent;
                                let mut out = Vec::new();
                                verifier.handle(&env, &mut out);
                                let host_ns = wall.elapsed().as_nanos() as u64;
                                let cpu = model.scale_ns(host_ns);
                                stats.absorb_message(
                                    cpu,
                                    verifier.stats.bytes_sent - bytes_before,
                                    verifier.bdd_nodes(),
                                );
                                if tel.is_enabled() {
                                    tel.span(
                                        dev,
                                        dvm_span_name(&env.payload),
                                        "dvm",
                                        begin,
                                        host_ns.max(1),
                                        env.trace,
                                    );
                                    tel.observe(dev, &HANDLE_NS, cpu);
                                }
                                route(&peers, out, &inflight, &progress);
                                progress.note_processed(dev);
                                inflight.release();
                            }
                            DeviceMsg::FibBatch(us, trace) => {
                                let wall = Instant::now();
                                let mut out = Vec::new();
                                verifier.set_trace(trace);
                                verifier.handle_fib_batch(&us, &mut out);
                                stats.busy_ns += model.scale_ns(wall.elapsed().as_nanos() as u64);
                                route(&peers, out, &inflight, &progress);
                                progress.note_processed(dev);
                                inflight.release();
                            }
                            DeviceMsg::Reboot(trace) => {
                                let wall = Instant::now();
                                let mut out = Vec::new();
                                verifier.set_trace(trace);
                                verifier.reboot(&mut out);
                                stats.busy_ns += model.scale_ns(wall.elapsed().as_nanos() as u64);
                                route(&peers, out, &inflight, &progress);
                                progress.note_processed(dev);
                                inflight.release();
                            }
                            DeviceMsg::ReplayFor(d, trace) => {
                                let wall = Instant::now();
                                let mut out = Vec::new();
                                verifier.set_trace(trace);
                                verifier.replay_for_restart(d, &mut out);
                                stats.busy_ns += model.scale_ns(wall.elapsed().as_nanos() as u64);
                                route(&peers, out, &inflight, &progress);
                                progress.note_processed(dev);
                                inflight.release();
                            }
                            DeviceMsg::Churn {
                                epoch,
                                trace,
                                groups,
                                remove,
                                wipe,
                                reannounce,
                            } => {
                                let begin = tel.host_tick();
                                let wall = Instant::now();
                                let mut out = Vec::new();
                                verifier.set_trace(trace);
                                verifier.set_epoch(epoch);
                                if wipe {
                                    let all = verifier.node_ids();
                                    verifier.remove_nodes(&all);
                                }
                                if !remove.is_empty() {
                                    verifier.remove_nodes(&remove);
                                }
                                for (base, tasks) in groups {
                                    match &base {
                                        Some(sp) => verifier.install_tasks(tasks, sp, &mut out),
                                        None => verifier.set_tasks(tasks, &mut out),
                                    }
                                }
                                if reannounce {
                                    verifier.reannounce(&mut out);
                                }
                                let host_ns = wall.elapsed().as_nanos() as u64;
                                stats.busy_ns += model.scale_ns(host_ns);
                                if tel.is_enabled() {
                                    tel.span_aux(
                                        dev,
                                        "churn.apply",
                                        "churn",
                                        begin,
                                        host_ns.max(1),
                                        trace,
                                        epoch,
                                    );
                                }
                                route(&peers, out, &inflight, &progress);
                                progress.note_processed(dev);
                                inflight.release();
                            }
                            DeviceMsg::Collect(nodes, reply) => {
                                let results = nodes
                                    .into_iter()
                                    .map(|n| (n, verifier.node_result(n, None)))
                                    .collect();
                                let _ = reply.send(results);
                            }
                            #[cfg(test)]
                            DeviceMsg::Crash => panic!("injected device-task crash"),
                            #[cfg(test)]
                            DeviceMsg::Hang(unblock) => {
                                // Blocks until the test drops the sender,
                                // wedging this thread while its channel
                                // backlog grows — a staged stall.
                                let _ = unblock.recv();
                            }
                            DeviceMsg::Shutdown => break,
                        }
                    }
                    stats
                }),
            ));
        }

        ThreadedEngine {
            plan: plan.clone(),
            senders,
            inflight,
            handles,
            init_stats,
            next_trace: AtomicU64::new(FIRST_EVENT_TRACE),
            epoch: AtomicU64::new(0),
            churn: ChurnState::new(),
            quarantined: BTreeSet::new(),
            unreachable: BTreeMap::new(),
            progress,
            stalled: Mutex::new(BTreeMap::new()),
            tel: cfg.telemetry.clone(),
            joined: false,
            store: IntentStore::with_base(plan.clone(), ps.clone(), None),
            topology: net.topology.clone(),
            layout: net.layout,
            degraded_epochs: BTreeMap::new(),
            churn_events: 0,
        }
    }

    fn alloc_trace(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::SeqCst)
    }

    /// Blocks until no DVM message is queued or being processed.
    pub fn wait_quiescent(&self) {
        self.inflight.wait_zero();
    }

    /// Waits for quiescence under a convergence watchdog: per-device
    /// progress heartbeats distinguish a run that is still converging
    /// (some processed counter advances every heartbeat) from one that
    /// is stalled (backlog exists, nothing advances for
    /// `stall_heartbeats` consecutive samples — a dead, wedged or
    /// partitioned device). A stall records the offending devices so
    /// [`ThreadedEngine::report`] marks their nodes `Stale`; a later
    /// converged wait clears them.
    pub fn wait_quiescent_watched(&self, cfg: &WatchdogConfig) -> WatchdogVerdict {
        let mut last = self.progress.snapshot_processed();
        let mut stalls = 0u32;
        loop {
            if self.inflight.wait_zero_timeout(cfg.heartbeat) {
                self.stalled.lock().unwrap().clear();
                return WatchdogVerdict::Converged;
            }
            let snap = self.progress.snapshot_processed();
            if snap != last {
                stalls = 0;
                last = snap;
                continue;
            }
            stalls += 1;
            if stalls >= cfg.stall_heartbeats.max(1) {
                let devices = self.progress.lagging();
                let epoch = self.epoch.load(Ordering::SeqCst);
                let mut stalled = self.stalled.lock().unwrap();
                for d in &devices {
                    stalled.insert(*d, epoch);
                    self.tel.count(*d, "tulkun_watchdog_stalls_total", 1);
                    if self.tel.is_enabled() {
                        self.tel.span_aux(
                            *d,
                            "churn.watchdog_stall",
                            "churn",
                            self.tel.host_tick(),
                            1,
                            0,
                            epoch,
                        );
                    }
                    self.tel
                        .journal(JournalKind::WatchdogStall, *d, epoch, 0, None, || {
                            format!("watchdog declared d{} stalled (unprocessed backlog)", d.0)
                        });
                }
                return WatchdogVerdict::Stalled { devices };
            }
        }
    }

    /// The current topology generation (0 until the first churn event).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Applies one live topology churn event: incrementally re-plans,
    /// bumps the epoch fence and sends each device thread its share of
    /// the bump (epoch + task diff + re-announcement) as one atomic
    /// channel message. Per-channel FIFO guarantees each device fences
    /// before touching any post-churn message from a peer that already
    /// bumped; stragglers from the old epoch are discarded by the
    /// verifier-level fence and repaired by re-announcement. Call
    /// [`ThreadedEngine::wait_quiescent`] (or the watched variant)
    /// afterwards to let re-convergence drain.
    ///
    /// Every *live* intent is re-planned under the same fence
    /// ([`IntentStore::replan_all_for_churn`]): unaffected slices keep
    /// their node ids and ship zero tasks, slices the churned topology
    /// cannot host (or that would task a thread-less device — threads
    /// are fixed at spawn) degrade per-intent instead of rejecting the
    /// event, and parked installs get their bounded retry against the
    /// new epoch. Only a failure to re-plan the *base* invariant leaves
    /// the engine on the old epoch.
    pub fn apply_topology_event(
        &mut self,
        ev: &TopologyEvent,
        base: &Topology,
        inv: &Invariant,
    ) -> Result<(), PlanError> {
        let mut churn = self.churn.clone();
        if !churn.apply(ev) {
            return Ok(());
        }
        // Transactional: an Err re-planning the base invariant happens
        // before the store mutates anything. The thread roster caps
        // what any re-plan may task.
        let roster: BTreeSet<DeviceId> = self.senders.keys().copied().collect();
        let replan = self
            .store
            .replan_all_for_churn(base, Some(inv), &churn, Some(&roster))?;
        self.churn = churn;
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let trace = self.alloc_trace();
        self.tel.journal(
            JournalKind::TopologyChurn,
            ev.primary_device(),
            epoch,
            trace,
            None,
            || ev.describe(),
        );
        self.tel.journal(
            JournalKind::EpochFence,
            ev.primary_device(),
            epoch,
            trace,
            None,
            || format!("fence to epoch {epoch} (churn)"),
        );
        verify::journal_replan_transitions(
            &self.tel,
            &mut self.degraded_epochs,
            &replan,
            ev.primary_device(),
            epoch,
            trace,
            &ev.describe(),
        );
        match ev {
            TopologyEvent::DeviceDown(d) => {
                self.quarantined.insert(*d);
                self.tel.count(*d, "tulkun_quarantined_total", 1);
            }
            TopologyEvent::DeviceUp(d) => {
                self.quarantined.remove(d);
            }
            TopologyEvent::LinkDown(..) | TopologyEvent::LinkUp(..) => {}
        }
        let wipe_dev = match ev {
            TopologyEvent::DeviceUp(d) => Some(*d),
            _ => None,
        };
        // New nodes import their context's packet space; compile each
        // referenced context once.
        let mut spaces: BTreeMap<usize, PortablePred> = BTreeMap::new();
        for groups in replan.changed.values() {
            for g in groups {
                if let Some(c) = g.ctx {
                    spaces.entry(c).or_insert_with(|| {
                        verify::compile_packet_space(&self.layout, self.store.context_space(c))
                    });
                }
            }
        }
        for (dev, tx) in &self.senders {
            let groups = replan
                .changed
                .get(dev)
                .map(|gs| {
                    gs.iter()
                        .map(|g| (g.ctx.map(|c| spaces[&c].clone()), g.tasks.clone()))
                        .collect()
                })
                .unwrap_or_default();
            let bundle = DeviceMsg::Churn {
                epoch,
                trace,
                groups,
                remove: replan.removed.get(dev).cloned().unwrap_or_default(),
                wipe: wipe_dev == Some(*dev),
                reannounce: !self.quarantined.contains(dev),
            };
            self.inflight.add(1);
            if tx.send(bundle).is_ok() {
                self.progress.note_enqueued(*dev);
            } else {
                self.inflight.release();
            }
        }
        self.unreachable.retain(|_, d| self.churn.is_down(*d));
        for (n, d) in &replan.unreachable {
            self.unreachable.insert(*n, *d);
        }
        self.churn_events += 1;
        if let Some(p) = self.store.base_plan() {
            self.plan = p.clone();
        }
        Ok(())
    }

    /// The runtime intent store (read-only).
    pub fn intents(&self) -> &IntentStore {
        &self.store
    }

    /// Compiles `inv` and installs it as a runtime intent under an
    /// epoch bump, fanning each device's share (fence + task diff with
    /// the intent's base packet space + re-announcement) out as one
    /// atomic channel message. Call [`ThreadedEngine::wait_quiescent`]
    /// afterwards to let re-convergence drain.
    ///
    /// Device threads are fixed at [`ThreadedEngine::spawn`], so an
    /// intent whose slice touches a thread-less device is rejected
    /// *before* the store is touched (spawn with
    /// [`EngineConfig::all_devices`] to keep every device taskable).
    pub fn install_intent(
        &mut self,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta), PlanError> {
        self.install_intent_inner(None, name, inv)
    }

    /// [`ThreadedEngine::install_intent`] under a caller-chosen id —
    /// for deterministic replay.
    pub fn install_intent_as(
        &mut self,
        id: IntentId,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta), PlanError> {
        self.install_intent_inner(Some(id), name, inv)
    }

    fn install_intent_inner(
        &mut self,
        id: Option<IntentId>,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta), PlanError> {
        let cp = if self.churn.is_quiet() {
            let plan = Planner::new(&self.topology).plan(inv)?;
            let PlanKind::Counting(cp) = &plan.kind else {
                return Err(PlanError::Unsupported(
                    "runtime intents require a counting plan (local-contract \
                     behaviors have no DPVNet slice to install)"
                        .to_string(),
                ));
            };
            // Transactionality: reject a slice touching a thread-less
            // device *before* the store commits anything.
            for t in &cp.tasks {
                if !self.senders.contains_key(&t.dev) {
                    return Err(PlanError::Unsupported(format!(
                        "intent {name:?} tasks device {:?}, which has no \
                         verifier thread (spawn with EngineConfig::all_devices)",
                        t.dev
                    )));
                }
            }
            cp.clone()
        } else {
            // The install races an active topology fence: plan against
            // the effective (post-churn) topology; a slice it cannot
            // host is *parked* for bounded retry on the next fence
            // instead of rejected.
            let roster: BTreeSet<DeviceId> = self.senders.keys().copied().collect();
            let effective = self.churn.apply_to(&self.topology);
            match plan_intent_on(&effective, inv, &self.churn, Some(&roster)) {
                Ok(cp) => cp,
                Err(e) => {
                    let id = self.store.park(id, name, inv.clone())?;
                    let epoch = self.epoch.load(Ordering::SeqCst);
                    self.tel.journal(
                        JournalKind::IntentParked,
                        DeviceId(0),
                        epoch,
                        0,
                        Some(id.0),
                        || format!("parked behind fence @epoch {epoch}: {e}"),
                    );
                    return Ok((id, IntentDelta::default()));
                }
            }
        };
        let (id, delta) =
            self.store
                .install(id, name, Some(inv.clone()), cp, inv.packet_space.clone())?;
        let space = verify::compile_packet_space(
            &self.layout,
            delta.space.as_ref().unwrap_or(&inv.packet_space),
        );
        self.fence_and_fan_out(&delta, Some(space));
        let dev = delta.changed.keys().next().copied().unwrap_or(DeviceId(0));
        let name = name.to_string();
        self.tel.journal(
            JournalKind::IntentInstalled,
            dev,
            self.epoch.load(Ordering::SeqCst),
            0,
            Some(id.0),
            || format!("intent {name:?} installed"),
        );
        self.tel
            .gauge_set(dev, "tulkun_intent_count", self.store.live().count() as i64);
        Ok((id, delta))
    }

    /// Removes a live intent under the same epoch fence: only nodes no
    /// surviving intent owns are uninstalled. Call
    /// [`ThreadedEngine::wait_quiescent`] afterwards.
    pub fn remove_intent(&mut self, id: IntentId) -> Result<IntentDelta, PlanError> {
        // A parked or degraded intent owns no on-device state: removing
        // it drains the bookkeeping without a fence.
        let no_footprint =
            self.store.is_parked(id) || self.store.get(id).is_some_and(|i| i.is_degraded());
        let delta = self.store.remove(id)?;
        self.degraded_epochs.remove(&id.0);
        if !no_footprint {
            self.fence_and_fan_out(&delta, None);
        }
        let dev = delta
            .removed
            .keys()
            .chain(delta.changed.keys())
            .next()
            .copied()
            .unwrap_or(DeviceId(0));
        self.tel.journal(
            JournalKind::IntentRemoved,
            dev,
            self.epoch.load(Ordering::SeqCst),
            0,
            Some(id.0),
            || format!("intent {} removed", id.0),
        );
        self.tel
            .gauge_set(dev, "tulkun_intent_count", self.store.live().count() as i64);
        Ok(delta)
    }

    /// Bumps the epoch and sends every device thread its share of an
    /// intent delta as one atomic [`DeviceMsg::Churn`] bundle (fence +
    /// removals + task diff + re-announcement). `base` is the packet
    /// space new nodes count over (`None` for removals).
    fn fence_and_fan_out(&mut self, delta: &IntentDelta, base: Option<PortablePred>) {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let trace = self.alloc_trace();
        if self.tel.is_enabled() {
            let first = self.senders.keys().next().copied().unwrap_or(DeviceId(0));
            self.tel.count(first, "tulkun_epoch_bumps_total", 1);
        }
        if self.tel.journal_on() {
            let first = delta
                .changed
                .keys()
                .chain(delta.removed.keys())
                .next()
                .copied()
                .unwrap_or(DeviceId(0));
            self.tel
                .journal(JournalKind::EpochFence, first, epoch, trace, None, || {
                    format!("fence to epoch {epoch} (intent churn)")
                });
        }
        for (dev, tx) in &self.senders {
            let groups = match delta.changed.get(dev) {
                Some(tasks) => vec![(base.clone(), tasks.clone())],
                None => Vec::new(),
            };
            let bundle = DeviceMsg::Churn {
                epoch,
                trace,
                groups,
                remove: delta.removed.get(dev).cloned().unwrap_or_default(),
                wipe: false,
                reannounce: !self.quarantined.contains(dev),
            };
            self.inflight.add(1);
            if tx.send(bundle).is_ok() {
                self.progress.note_enqueued(*dev);
            } else {
                self.inflight.release();
            }
        }
    }

    /// Injects a rule update at its device (counts as one in-flight
    /// event until processed).
    pub fn inject_update(&self, update: RuleUpdate) {
        self.inject_batch(vec![update]);
    }

    /// Injects a burst of rule updates: coalesced per device
    /// ([`UpdateBatch::coalesced`]), one `FibBatch` message per affected
    /// device (each counts as one in-flight event until processed).
    pub fn inject_batch(&self, updates: Vec<RuleUpdate>) {
        let trace = self.alloc_trace();
        let n = updates.len();
        let batch: UpdateBatch = updates.into_iter().collect();
        if self.tel.journal_on() {
            let first = batch
                .coalesced()
                .first()
                .map(|(d, _)| *d)
                .unwrap_or(DeviceId(0));
            self.tel.journal(
                JournalKind::BatchApplied,
                first,
                self.epoch.load(Ordering::SeqCst),
                trace,
                None,
                || format!("{n} updates"),
            );
        }
        for (dev, ops) in batch.coalesced() {
            // Quarantined devices still fold in their own FIB updates
            // (no plan nodes, so nothing is announced) so `DeviceUp`
            // revives them against the current data plane — mirroring
            // the single-driver engine and the reference session.
            if let Some(tx) = self.senders.get(&dev) {
                self.inflight.add(1);
                if tx.send(DeviceMsg::FibBatch(ops, trace)).is_ok() {
                    self.progress.note_enqueued(dev);
                } else {
                    self.inflight.release();
                }
            }
        }
    }

    /// Crashes and restarts one device's verification agent, then has
    /// every other device replay its durable protocol state toward it
    /// (the concurrent analogue of [`Engine::crash_restart`]). The
    /// `Reboot` is enqueued on the crashed device's channel *before*
    /// any neighbor is told to replay, so per-channel FIFO guarantees
    /// the replayed messages land on the fresh state. Call
    /// [`ThreadedEngine::wait_quiescent`] afterwards to let the
    /// recovery exchange drain.
    pub fn crash_restart(&mut self, dev: DeviceId) {
        let Some(tx) = self.senders.get(&dev) else {
            return;
        };
        let trace = self.alloc_trace();
        self.tel.journal(
            JournalKind::CrashRestart,
            dev,
            self.epoch.load(Ordering::SeqCst),
            trace,
            None,
            || format!("verification agent on d{} crashed and restarted", dev.0),
        );
        self.inflight.add(1);
        if tx.send(DeviceMsg::Reboot(trace)).is_err() {
            self.inflight.release();
            return;
        }
        self.progress.note_enqueued(dev);
        for (nb, tx) in &self.senders {
            if *nb == dev {
                continue;
            }
            self.inflight.add(1);
            if tx.send(DeviceMsg::ReplayFor(dev, trace)).is_ok() {
                self.progress.note_enqueued(*nb);
            } else {
                self.inflight.release();
            }
        }
        self.init_stats.crashes_recovered += 1;
    }

    #[cfg(test)]
    fn inject_crash(&self, dev: DeviceId) {
        if let Some(tx) = self.senders.get(&dev) {
            let _ = tx.send(DeviceMsg::Crash);
        }
    }

    /// Wedges one device thread until the returned sender is dropped —
    /// a staged genuine stall (thread alive, backlog growing) for
    /// watchdog tests.
    #[cfg(test)]
    fn inject_hang(&self, dev: DeviceId) -> mpsc::Sender<()> {
        let (tx, rx) = mpsc::channel();
        if let Some(ch) = self.senders.get(&dev) {
            let _ = ch.send(DeviceMsg::Hang(rx));
        }
        tx
    }

    /// Collects source results and evaluates the invariant — the same
    /// report assembly as the single-driver engine, over channels.
    pub fn report(&self) -> Report {
        // One Collect round trip per device covering every live
        // intent's source nodes (global ids, deduplicated across
        // overlapping slices).
        let mut by_dev: BTreeMap<DeviceId, BTreeSet<NodeId>> = BTreeMap::new();
        for intent in self.store.live() {
            if intent.is_degraded() {
                // Not evaluated; its stale global ids may have been
                // reassigned by a later fence.
                continue;
            }
            for (dev, local) in intent.plan.dpvnet.sources() {
                let global = intent.to_global[local.0 as usize];
                by_dev.entry(*dev).or_default().insert(global);
            }
        }
        let mut results: BTreeMap<(DeviceId, NodeId), Vec<(PortablePred, Counts)>> =
            BTreeMap::new();
        for (dev, nodes) in by_dev {
            let Some(tx) = self.senders.get(&dev) else {
                continue;
            };
            let (reply_tx, reply_rx) = mpsc::channel();
            if tx
                .send(DeviceMsg::Collect(nodes.into_iter().collect(), reply_tx))
                .is_err()
            {
                continue;
            }
            if let Ok(rs) = reply_rx.recv() {
                for (node, r) in rs {
                    results.insert((dev, node), r);
                }
            }
        }
        let mut r = verify::evaluate_intents(&self.store, |dev, node| {
            results.get(&(dev, node)).cloned().unwrap_or_default()
        });
        if self.churn_events > 0 {
            let stalled = self.stalled.lock().unwrap().clone();
            verify::mark_freshness_store(
                &mut r,
                &self.store,
                &self.unreachable,
                self.quarantined.iter().copied(),
                &stalled,
                &self.degraded_epochs,
            );
        }
        r
    }

    /// Shuts all device threads down, joining every handle. Per-device
    /// runtime stats (merged with the init-time stats) come back on
    /// success; a panicked device task is surfaced as [`DevicePanic`]
    /// instead of being silently leaked.
    pub fn shutdown(mut self) -> Result<RuntimeStats, Vec<DevicePanic>> {
        let mut stats = std::mem::take(&mut self.init_stats);
        let mut panics = Vec::new();
        for tx in self.senders.values() {
            let _ = tx.send(DeviceMsg::Shutdown);
        }
        for (dev, h) in self.handles.drain(..) {
            match h.join() {
                Ok(st) => stats.merge_device(dev, st),
                Err(payload) => panics.push(DevicePanic {
                    device: dev,
                    message: panic_message(payload),
                }),
            }
        }
        self.joined = true;
        if panics.is_empty() {
            for st in stats.per_device.values() {
                stats.messages += st.messages as usize;
                stats.bytes += st.bytes_sent;
            }
            Ok(stats)
        } else {
            Err(panics)
        }
    }
}

impl Substrate for ThreadedEngine {
    /// Applies one [`RuntimeEvent`] and waits for quiescence (the
    /// threaded substrate is fire-and-forget internally, so the uniform
    /// entry point drains before returning; `messages` is 0 — per-event
    /// message counts are not tracked across threads).
    fn apply_event(&mut self, ev: &RuntimeEvent) -> Result<EventOutcome, PlanError> {
        use RuntimeEvent as E;
        let out = match ev {
            E::Batch(updates) => {
                self.inject_batch(updates.clone());
                EventOutcome::default()
            }
            E::Topology {
                event,
                base,
                invariant,
            } => {
                self.apply_topology_event(event, base, invariant)?;
                EventOutcome::default()
            }
            E::CrashRestart(dev) => {
                self.crash_restart(*dev);
                EventOutcome::default()
            }
            E::SetBackend(_) => {
                return Err(PlanError::Unsupported(
                    "hot backend swap is a service-layer event (the \
                     engine must be rebuilt); use the verification \
                     service"
                        .to_string(),
                ))
            }
            E::InstallIntent { name, invariant } => {
                let (id, delta) = self.install_intent(name, invariant)?;
                EventOutcome {
                    messages: 0,
                    intent: Some(id),
                    slice: Some((delta.total_nodes, delta.reused_nodes)),
                    parked: self.store.is_parked(id),
                }
            }
            E::RemoveIntent(id) => {
                let delta = self.remove_intent(*id)?;
                EventOutcome {
                    messages: 0,
                    intent: Some(*id),
                    slice: Some((delta.total_nodes, delta.reused_nodes)),
                    parked: false,
                }
            }
        };
        self.wait_quiescent();
        Ok(out)
    }
}

impl Drop for ThreadedEngine {
    /// Dropping without an explicit [`ThreadedEngine::shutdown`] still
    /// joins every device thread so no task leaks past the engine's
    /// lifetime (panics are swallowed here — call `shutdown` to
    /// observe them).
    fn drop(&mut self) {
        if self.joined {
            return;
        }
        for tx in self.senders.values() {
            let _ = tx.send(DeviceMsg::Shutdown);
        }
        for (_, h) in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn route(
    peers: &BTreeMap<DeviceId, mpsc::Sender<DeviceMsg>>,
    out: Vec<Envelope>,
    inflight: &InflightGauge,
    progress: &Progress,
) {
    inflight.add(out.len() as i64);
    for env in out {
        let to = env.to;
        match peers.get(&to) {
            Some(tx) if tx.send(DeviceMsg::Dvm(env)).is_ok() => {
                progress.note_enqueued(to);
            }
            _ => inflight.release(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_core::count::CountExpr;
    use tulkun_core::planner::Planner;
    use tulkun_core::spec::{Behavior, Invariant, PathExpr};
    use tulkun_core::verify::Freshness;
    use tulkun_datasets::fig2a_network;
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};

    pub(crate) fn waypoint_inv() -> Invariant {
        Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress(["S"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("S .* W .* D").unwrap().loop_free(),
            ))
            .build()
            .unwrap()
    }

    pub(crate) fn waypoint_plan(net: &Network) -> (CountingPlan, PacketSpace) {
        let inv = waypoint_inv();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        (cp, inv.packet_space)
    }

    /// The churn acceptance reference: a *fresh* plan + run of the
    /// post-churn topology, with no churn machinery involved.
    fn fresh_report_bytes(base: &Network, churn: &ChurnState) -> Vec<u8> {
        let net = Network {
            topology: churn.apply_to(&base.topology),
            fibs: base.fibs.clone(),
            layout: base.layout,
        };
        let inv = waypoint_inv();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        let cache = LecCache::new();
        let mut engine = Engine::new_cached(
            &net,
            &cp,
            &inv.packet_space,
            &EngineConfig::default(),
            &cache,
            FifoTransport::default(),
            InstantClock,
        );
        engine.burst();
        engine.report().canonical_bytes()
    }

    #[test]
    fn fifo_engine_matches_reference_verdict() {
        let net = fig2a_network();
        let (cp, ps) = waypoint_plan(&net);
        let cache = LecCache::new();
        let mut engine = Engine::new_cached(
            &net,
            &cp,
            &ps,
            &EngineConfig::default(),
            &cache,
            FifoTransport::default(),
            InstantClock,
        );
        let r = engine.burst();
        assert!(r.messages > 0);
        assert_eq!(r.completion_ns, 0, "instant clock charges nothing");
        let report = engine.report();
        assert!(!report.holds());
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn parallel_init_report_is_identical() {
        let net = fig2a_network();
        let (cp, ps) = waypoint_plan(&net);
        let run = |parallel_init: bool| {
            let cache = LecCache::new();
            let cfg = EngineConfig {
                parallel_init,
                ..Default::default()
            };
            let mut engine = Engine::new_cached(
                &net,
                &cp,
                &ps,
                &cfg,
                &cache,
                LatencyTransport::new(net.topology.clone(), cfg.fallback_latency_ns),
                VirtualClock::new(cfg.model),
            );
            engine.burst();
            engine.report().canonical_bytes()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn threaded_engine_converges_and_reports() {
        let net = fig2a_network();
        let (cp, ps) = waypoint_plan(&net);
        let cache = LecCache::new();
        let engine = ThreadedEngine::spawn(&net, &cp, &ps, &EngineConfig::default(), &cache);
        engine.wait_quiescent();
        let report = engine.report();
        assert!(!report.holds());
        let stats = engine.shutdown().expect("no panics");
        assert!(stats.messages > 0);
        assert!(stats.per_device.values().any(|s| s.messages > 0));
    }

    #[test]
    fn threaded_engine_surfaces_device_panics() {
        let net = fig2a_network();
        let (cp, ps) = waypoint_plan(&net);
        let cache = LecCache::new();
        let engine = ThreadedEngine::spawn(&net, &cp, &ps, &EngineConfig::default(), &cache);
        engine.wait_quiescent();
        let participants = engine.handles.len();
        assert!(participants > 1, "test needs surviving threads");
        let dev = net.topology.device("W").unwrap();
        engine.inject_crash(dev);
        // shutdown() drains every handle: returning at all means the
        // surviving threads joined; the error must name exactly the
        // crashed device and nothing else.
        let err = engine.shutdown().expect_err("panic must be surfaced");
        assert_eq!(
            err.len(),
            1,
            "only the crashed device may panic; the other {} threads must join cleanly",
            participants - 1
        );
        assert_eq!(err[0].device, dev);
        assert!(err[0].message.contains("injected device-task crash"));
    }

    #[test]
    fn engine_crash_restart_reconverges_to_same_report() {
        let net = fig2a_network();
        let (cp, ps) = waypoint_plan(&net);
        let cache = LecCache::new();
        let mut engine = Engine::new_cached(
            &net,
            &cp,
            &ps,
            &EngineConfig::default(),
            &cache,
            LatencyTransport::new(net.topology.clone(), 10_000),
            VirtualClock::new(SwitchModel::MELLANOX),
        );
        engine.burst();
        let before = engine.report().canonical_bytes();
        // Crash every participating device in turn; each recovery must
        // land back on the identical Report.
        let devs: Vec<DeviceId> = engine.verifiers.keys().copied().collect();
        for dev in devs {
            let r = engine.crash_restart(dev);
            assert!(r.messages > 0, "recovery exchanges messages");
            assert_eq!(
                engine.report().canonical_bytes(),
                before,
                "crash of {dev:?} must recover the pre-crash Report"
            );
        }
        assert_eq!(
            engine.stats().crashes_recovered,
            engine.verifiers.len() as u64
        );
    }

    #[test]
    fn threaded_engine_crash_restart_reconverges() {
        let net = fig2a_network();
        let (cp, ps) = waypoint_plan(&net);
        let cache = LecCache::new();
        let mut engine = ThreadedEngine::spawn(&net, &cp, &ps, &EngineConfig::default(), &cache);
        engine.wait_quiescent();
        let before = engine.report().canonical_bytes();
        let dev = net.topology.device("W").unwrap();
        engine.crash_restart(dev);
        engine.wait_quiescent();
        assert_eq!(engine.report().canonical_bytes(), before);
        let stats = engine.shutdown().expect("no panics");
        assert_eq!(stats.crashes_recovered, 1);
    }

    #[test]
    fn engine_linkdown_matches_fresh_plan_of_post_churn_topology() {
        let net = fig2a_network();
        let (cp, ps) = waypoint_plan(&net);
        let inv = waypoint_inv();
        let cache = LecCache::new();
        let mut engine = Engine::new_cached(
            &net,
            &cp,
            &ps,
            &EngineConfig::default(),
            &cache,
            FifoTransport::default(),
            InstantClock,
        );
        engine.burst();
        let base_bytes = engine.report().canonical_bytes();
        let a = net.topology.device("A").unwrap();
        let b = net.topology.device("B").unwrap();

        let down = TopologyEvent::LinkDown(a, b);
        engine
            .apply_topology_event(&down, &net.topology, &inv)
            .unwrap();
        assert_eq!(engine.epoch(), 1);
        let mut churn = ChurnState::new();
        churn.apply(&down);
        assert_eq!(
            engine.report().canonical_bytes(),
            fresh_report_bytes(&net, &churn),
            "incremental re-plan must match a fresh plan of the post-churn topology"
        );

        // Applying the same event again is a no-op: no epoch bump.
        engine
            .apply_topology_event(&down, &net.topology, &inv)
            .unwrap();
        assert_eq!(engine.epoch(), 1);

        // Recovery converges back to the original verdict.
        let up = TopologyEvent::LinkUp(a, b);
        engine
            .apply_topology_event(&up, &net.topology, &inv)
            .unwrap();
        assert_eq!(engine.epoch(), 2);
        assert_eq!(engine.report().canonical_bytes(), base_bytes);
        let fresh = engine.report();
        assert!(
            fresh.freshness.iter().all(|(_, f)| *f == Freshness::Fresh),
            "no device is quarantined or stalled: everything is fresh"
        );
    }

    #[test]
    fn engine_devicedown_quarantines_and_marks_unreachable() {
        let net = fig2a_network();
        let (cp, ps) = waypoint_plan(&net);
        let inv = waypoint_inv();
        let cache = LecCache::new();
        let mut engine = Engine::new_cached(
            &net,
            &cp,
            &ps,
            &EngineConfig::default(),
            &cache,
            FifoTransport::default(),
            InstantClock,
        );
        engine.burst();
        let base_bytes = engine.report().canonical_bytes();
        let b = net.topology.device("B").unwrap();

        let down = TopologyEvent::DeviceDown(b);
        engine
            .apply_topology_event(&down, &net.topology, &inv)
            .unwrap();
        let report = engine.report();
        assert_eq!(report.quarantined, vec![b]);
        assert!(
            report
                .freshness
                .iter()
                .any(|(_, f)| *f == Freshness::Unreachable),
            "the quarantined device's old nodes must be marked unreachable"
        );
        let mut churn = ChurnState::new();
        churn.apply(&down);
        assert_eq!(
            report.canonical_bytes(),
            fresh_report_bytes(&net, &churn),
            "reachable results must match a fresh plan without the dead device"
        );

        // The device comes back: quarantine lifts, its verifier is
        // wiped and re-tasked, and the report returns to the original.
        let up = TopologyEvent::DeviceUp(b);
        engine
            .apply_topology_event(&up, &net.topology, &inv)
            .unwrap();
        let report = engine.report();
        assert!(report.quarantined.is_empty());
        assert!(report.freshness.iter().all(|(_, f)| *f == Freshness::Fresh));
        assert_eq!(report.canonical_bytes(), base_bytes);
    }

    #[test]
    fn engine_staged_midflight_churn_terminates_and_matches_fresh() {
        // Acceptance shape: a FIB batch is staged (enqueued, not yet
        // drained) when LinkDown and DeviceDown land mid-flight. The
        // run must terminate and match a fresh plan of the post-churn
        // topology with the same update applied.
        let net = fig2a_network();
        let (cp, ps) = waypoint_plan(&net);
        let inv = waypoint_inv();
        let w = net.topology.device("W").unwrap();
        let a = net.topology.device("A").unwrap();
        let b = net.topology.device("B").unwrap();
        let update = RuleUpdate::Insert {
            device: a,
            rule: Rule {
                priority: 50,
                matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
                action: Action::fwd(w),
            },
        };
        let cache = LecCache::new();
        let mut engine = Engine::new_cached(
            &net,
            &cp,
            &ps,
            &EngineConfig::default(),
            &cache,
            LatencyTransport::new(net.topology.clone(), 10_000),
            VirtualClock::new(SwitchModel::MELLANOX),
        );
        engine.burst();
        engine.stage_batch(std::slice::from_ref(&update));
        let mut churn = ChurnState::new();
        for ev in [TopologyEvent::LinkDown(a, b), TopologyEvent::DeviceDown(b)] {
            churn.apply(&ev);
            engine
                .apply_topology_event(&ev, &net.topology, &inv)
                .unwrap();
        }
        engine.run_staged();
        assert_eq!(engine.epoch(), 2);

        // Reference: fresh engine on the post-churn topology, same
        // update applied after its burst.
        let fresh_net = Network {
            topology: churn.apply_to(&net.topology),
            fibs: net.fibs.clone(),
            layout: net.layout,
        };
        let fresh_plan = Planner::new(&fresh_net.topology).plan(&inv).unwrap();
        let fresh_cp = fresh_plan.counting().unwrap().clone();
        let fresh_cache = LecCache::new();
        let mut fresh = Engine::new_cached(
            &fresh_net,
            &fresh_cp,
            &ps,
            &EngineConfig::default(),
            &fresh_cache,
            FifoTransport::default(),
            InstantClock,
        );
        fresh.burst();
        fresh.apply_batch(std::slice::from_ref(&update));
        assert_eq!(
            engine.report().canonical_bytes(),
            fresh.report().canonical_bytes()
        );
        assert_eq!(engine.report().quarantined, vec![b]);
    }

    #[test]
    fn threaded_engine_churn_matches_single_driver() {
        let net = fig2a_network();
        let (cp, ps) = waypoint_plan(&net);
        let inv = waypoint_inv();
        let a = net.topology.device("A").unwrap();
        let b = net.topology.device("B").unwrap();
        let events = [TopologyEvent::LinkDown(a, b), TopologyEvent::DeviceDown(b)];

        let cache = LecCache::new();
        let mut reference = Engine::new_cached(
            &net,
            &cp,
            &ps,
            &EngineConfig::default(),
            &cache,
            FifoTransport::default(),
            InstantClock,
        );
        reference.burst();
        for ev in &events {
            reference
                .apply_topology_event(ev, &net.topology, &inv)
                .unwrap();
        }

        let cache = LecCache::new();
        let mut threaded = ThreadedEngine::spawn(&net, &cp, &ps, &EngineConfig::default(), &cache);
        threaded.wait_quiescent();
        let cfg = WatchdogConfig::default();
        for ev in &events {
            threaded
                .apply_topology_event(ev, &net.topology, &inv)
                .unwrap();
            // A healthy re-convergence must never trip the watchdog.
            assert_eq!(
                threaded.wait_quiescent_watched(&cfg),
                WatchdogVerdict::Converged
            );
        }
        assert_eq!(threaded.epoch(), 2);
        assert_eq!(
            threaded.report().canonical_bytes(),
            reference.report().canonical_bytes()
        );
        let mut churn = ChurnState::new();
        for ev in &events {
            churn.apply(ev);
        }
        assert_eq!(
            threaded.report().canonical_bytes(),
            fresh_report_bytes(&net, &churn)
        );
        assert_eq!(threaded.report().quarantined, vec![b]);
        threaded.shutdown().expect("no panics");
    }

    #[test]
    fn watchdog_flags_wedged_device_and_recovers() {
        let net = fig2a_network();
        let (cp, ps) = waypoint_plan(&net);
        let inv = waypoint_inv();
        let a = net.topology.device("A").unwrap();
        let b = net.topology.device("B").unwrap();
        let w = net.topology.device("W").unwrap();
        let cache = LecCache::new();
        let mut engine = ThreadedEngine::spawn(&net, &cp, &ps, &EngineConfig::default(), &cache);
        engine.wait_quiescent();

        // Bump the epoch once so freshness marking is active.
        engine
            .apply_topology_event(&TopologyEvent::LinkDown(a, b), &net.topology, &inv)
            .unwrap();
        let cfg = WatchdogConfig {
            heartbeat: Duration::from_millis(5),
            stall_heartbeats: 3,
        };
        assert_eq!(
            engine.wait_quiescent_watched(&cfg),
            WatchdogVerdict::Converged
        );

        // Wedge W, then hand it work it cannot process: the watchdog
        // must blame exactly the wedged device, not the healthy ones.
        let unblock = engine.inject_hang(w);
        engine.inject_update(RuleUpdate::Insert {
            device: w,
            rule: Rule {
                priority: 50,
                matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
                action: Action::fwd(b),
            },
        });
        match engine.wait_quiescent_watched(&cfg) {
            WatchdogVerdict::Stalled { devices } => assert_eq!(devices, vec![w]),
            v => panic!("expected a stall, got {v:?}"),
        }
        // While stalled, the report marks the wedged device's nodes
        // Stale at the stalling epoch — degraded, not wrong.
        let report = engine.report();
        assert!(
            report
                .freshness
                .iter()
                .any(|(_, f)| *f == Freshness::Stale(1)),
            "the wedged device's results must be marked stale"
        );

        // Unblocking lets the backlog drain; a later converged wait
        // clears the stall record and the report is fresh again.
        drop(unblock);
        assert_eq!(
            engine.wait_quiescent_watched(&cfg),
            WatchdogVerdict::Converged
        );
        let report = engine.report();
        assert!(report
            .freshness
            .iter()
            .all(|(_, f)| *f != Freshness::Stale(1)));
        engine.shutdown().expect("no panics");
    }

    #[test]
    fn churn_replan_to_untasked_device_fails_gracefully() {
        // A re-plan that needs a verifier on a device which had no
        // tasks in the running plan cannot be applied live: the engine
        // must refuse with `Unsupported` and stay on the old epoch,
        // not panic or half-apply.
        let net = fig2a_network();
        let (cp, ps) = waypoint_plan(&net);
        let inv = waypoint_inv();
        let cache = LecCache::new();
        let mut engine = Engine::new_cached(
            &net,
            &cp,
            &ps,
            &EngineConfig::default(),
            &cache,
            FifoTransport::default(),
            InstantClock,
        );
        engine.burst();
        let before = engine.report().canonical_bytes();
        let s = net.topology.device("S").unwrap();
        let d = net.topology.device("D").unwrap();
        // Isolating the destination makes the invariant unplannable.
        let ev = TopologyEvent::DeviceDown(d);
        let err = engine.apply_topology_event(&ev, &net.topology, &inv);
        if err.is_err() {
            assert_eq!(engine.epoch(), 0, "failed churn must not bump the epoch");
            assert_eq!(engine.report().canonical_bytes(), before);
        } else {
            // If the planner still supports the degenerate topology the
            // engine must at least have stayed coherent.
            assert_eq!(engine.report().quarantined, vec![d]);
        }
        let _ = s;
    }

    #[test]
    fn histogram_and_drain() {
        let mut stats = RuntimeStats::default();
        for s in [5, 50, 500, 5000] {
            stats.msg_ns_samples.push(s);
        }
        assert_eq!(stats.msg_ns_histogram(&[10, 100, 1000]), vec![1, 1, 1, 1]);
        assert_eq!(stats.drain_msg_samples().len(), 4);
        assert!(stats.msg_ns_samples.is_empty());
    }
}
