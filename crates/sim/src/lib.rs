#![warn(missing_docs)]
//! Execution substrates for Tulkun's evaluation.
//!
//! The paper runs Tulkun on real switches; this crate virtualizes the
//! testbed while running the *real* verifier code. All substrates sit
//! on one shared device-runtime layer:
//!
//! * [`runtime`] — the [`Transport`]/[`Clock`] traits, the generic
//!   [`Engine`] (verifier construction, envelope routing, quiescence
//!   detection, result collection, report assembly), the concurrent
//!   [`ThreadedEngine`], and the single [`RuntimeStats`] observability
//!   surface every harness reads.
//! * [`event`] — the discrete-event simulator: the engine with a
//!   virtual-time heap ([`runtime::LatencyTransport`]) and a
//!   [`runtime::VirtualClock`]; per-event CPU time is *measured* (not
//!   modeled) and DVM messages travel with the topology's link
//!   latencies. Verification time is the quiescence instant, exactly as
//!   the paper measures it (§9.3.1).
//! * [`models`] — the four commodity switch models of §9.4 as CPU speed
//!   factors.
//! * [`central`] — the harness for centralized baselines: data planes
//!   travel to a verifier device over lowest-latency paths (the
//!   runtime's [`runtime::CollectionClock`]), then the baseline's
//!   measured compute time is added.
//! * [`distributed`] — one OS thread per on-device verifier with
//!   in-order channels (the deployment shape of the paper's prototype),
//!   wrapping [`runtime::ThreadedEngine`].
//! * [`localsim`] — `equal`-operator local contracts (communication-
//!   free; time = slowest device), instrumented through the same
//!   runtime clock and stats.
//! * [`faults`] — the lossy-management-network decorator
//!   ([`faults::FaultyTransport`]): seeded drops, duplicates, reorders
//!   and delays per a `FaultProfile`, recovered by the at-least-once
//!   reliability layer (`tulkun_core::dvm::reliable`) so Reports stay
//!   byte-identical under loss; [`event::FaultyDvmSim`] is the event
//!   simulator over this channel, and both engines recover injected
//!   device crash/restarts (`Engine::crash_restart`,
//!   `ThreadedEngine::crash_restart`).
//!
//! Live topology churn (`tulkun_core::churn::TopologyEvent`) is a
//! first-class event on every substrate: `apply_topology_event`
//! epoch-fences in-flight traffic, applies the incremental re-plan
//! diff and re-announces durable state, converging to the same report
//! as a fresh plan of the post-churn topology. The threaded substrate
//! adds a convergence watchdog ([`runtime::WatchdogConfig`]) that
//! distinguishes "still converging" from a wedged or partitioned
//! device and degrades the report (`Stale`/`Unreachable` freshness
//! markers) instead of hanging.
//!
//! [`Transport`]: runtime::Transport
//! [`Clock`]: runtime::Clock
//! [`Engine`]: runtime::Engine
//! [`ThreadedEngine`]: runtime::ThreadedEngine
//! [`RuntimeStats`]: runtime::RuntimeStats

pub mod central;
pub mod distributed;
pub mod event;
pub mod faults;
pub mod localsim;
pub mod models;
pub mod runtime;
pub mod service;

pub use central::{central_burst, central_update, CentralRun};
pub use distributed::DistributedRun;
pub use event::{DeviceStats, DvmSim, FaultyDvmSim, SimConfig, SimResult};
pub use faults::FaultyTransport;
pub use models::SwitchModel;
pub use runtime::{
    Engine, EngineConfig, LecCache, RuntimeStats, ThreadedEngine, WatchdogConfig, WatchdogVerdict,
};
pub use service::{
    AdmissionPolicy, IntentStatus, Service, ServiceConfig, ServiceError, ServiceRequest,
    ServiceStatus,
};
pub use tulkun_predicate::{network_ip_only, BackendKind, AUTO_RATE_THRESHOLD};
pub use tulkun_telemetry::{Telemetry, TelemetryConfig};
