#![warn(missing_docs)]
//! Execution substrates for Tulkun's evaluation.
//!
//! The paper runs Tulkun on real switches; this crate virtualizes the
//! testbed while running the *real* verifier code:
//!
//! * [`event`] — a discrete-event simulator: every device is a
//!   sequential processor whose per-event CPU time is *measured* (not
//!   modeled), and DVM messages travel with the topology's link
//!   latencies. Verification time is the quiescence instant, exactly as
//!   the paper measures it (§9.3.1).
//! * [`models`] — the four commodity switch models of §9.4 as CPU speed
//!   factors.
//! * [`central`] — the harness for centralized baselines: data planes
//!   travel to a verifier device over lowest-latency paths, then the
//!   baseline's measured compute time is added.
//! * [`distributed`] — a tokio runtime where each on-device verifier is
//!   an async task and links are in-order channels (the deployment shape
//!   of the paper's prototype).
//! * [`localsim`] — the same event engine for `equal`-operator local
//!   contracts (communication-free; time = slowest device).

pub mod central;
pub mod distributed;
pub mod event;
pub mod localsim;
pub mod models;

pub use central::{central_burst, central_update, CentralRun};
pub use event::{DeviceStats, DvmSim, SimConfig, SimResult};
pub use models::SwitchModel;
