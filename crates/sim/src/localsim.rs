//! Simulated execution of `equal`-operator local contracts (RCDC-style):
//! every device checks its contracts in parallel with no communication,
//! so verification time is the slowest device's measured check time.
//!
//! Communication-free means there is no transport to drive; the
//! substrate still runs on the runtime layer — a [`VirtualClock`]
//! charges each device's measured check time and a [`RuntimeStats`]
//! carries the per-device counters the harnesses read. It is also the
//! one substrate the fault-injection layer ([`crate::faults`]) cannot
//! touch: with no messages there is nothing to drop, so its
//! `RuntimeStats::fault` counters stay zero by construction.

use crate::models::SwitchModel;
use crate::runtime::{Clock, LecCache, RuntimeStats, VirtualClock};
use std::collections::BTreeMap;
use std::time::Instant;
use tulkun_core::localcheck::{ContractViolation, LocalChecker};
use tulkun_core::planner::{LocalContract, LocalPlan};
use tulkun_core::spec::PacketSpace;
use tulkun_core::verify::compile_packet_space;
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::DeviceId;

/// Outcome of a local-contract round.
#[derive(Debug, Clone, Default)]
pub struct LocalSimResult {
    /// Max scaled per-device check time (devices run in parallel).
    pub completion_ns: u64,
    /// Sum of all device check times (the centralized-equivalent cost).
    pub total_cpu_ns: u64,
    /// Scaled check time per participating device.
    pub per_device: Vec<(DeviceId, u64)>,
    /// Contract violations found.
    pub violations: Vec<ContractViolation>,
}

/// The set of per-device checkers for one local plan.
pub struct LocalSim {
    clock: VirtualClock,
    checkers: BTreeMap<DeviceId, LocalChecker>,
    stats: RuntimeStats,
}

impl LocalSim {
    /// Builds one checker per device holding contracts.
    pub fn new(net: &Network, plan: &LocalPlan, ps: &PacketSpace, model: SwitchModel) -> LocalSim {
        let cache = LecCache::new();
        Self::new_cached(net, plan, ps, model, &cache)
    }

    /// Like [`LocalSim::new`], sharing a per-device LEC cache across
    /// invariants (the §8 architecture: one LEC table per device).
    pub fn new_cached(
        net: &Network,
        plan: &LocalPlan,
        ps: &PacketSpace,
        model: SwitchModel,
        lec_cache: &LecCache,
    ) -> LocalSim {
        let psp = compile_packet_space(&net.layout, ps);
        let mut by_dev: BTreeMap<DeviceId, Vec<LocalContract>> = BTreeMap::new();
        for c in &plan.contracts {
            by_dev.entry(c.dev).or_default().push(c.clone());
        }
        let mut stats = RuntimeStats::default();
        let clock = VirtualClock::new(model);
        let checkers = by_dev
            .into_iter()
            .map(|(dev, contracts)| {
                let wall = Instant::now();
                let cached = lec_cache.get(dev);
                let mut checker = LocalChecker::new_with_lecs(
                    dev,
                    net.layout,
                    net.fib(dev).clone(),
                    contracts,
                    &psp,
                    cached.as_deref().map(Vec::as_slice),
                );
                if cached.is_none() {
                    lec_cache.insert(dev, checker.export_lecs());
                }
                stats.per_device.entry(dev).or_default().init_ns =
                    model.scale_ns(wall.elapsed().as_nanos() as u64);
                (dev, checker)
            })
            .collect();
        LocalSim {
            clock,
            checkers,
            stats,
        }
    }

    /// Runs one device's check through the clock, recording it in the
    /// runtime stats.
    fn check_device(
        &mut self,
        dev: DeviceId,
        out: &mut LocalSimResult,
        update: Option<&RuleUpdate>,
        net: Option<&Network>,
    ) {
        let Some(checker) = self.checkers.get_mut(&dev) else {
            return;
        };
        let wall = Instant::now();
        if let (Some(_), Some(net)) = (update, net) {
            checker.update_fib(net.fib(dev).clone());
        }
        let v = checker.check();
        let span = self.clock.charge(dev, 0, wall.elapsed().as_nanos() as u64);
        self.stats.per_device.entry(dev).or_default().busy_ns += span.cpu_ns;
        out.completion_ns = out.completion_ns.max(span.cpu_ns);
        out.total_cpu_ns += span.cpu_ns;
        out.per_device.push((dev, span.cpu_ns));
        out.violations.extend(v);
    }

    /// Runs every device's checks (burst).
    pub fn burst(&mut self) -> LocalSimResult {
        self.clock.reset();
        let mut out = LocalSimResult::default();
        let devices: Vec<DeviceId> = self.checkers.keys().copied().collect();
        for dev in devices {
            self.check_device(dev, &mut out, None, None);
        }
        out
    }

    /// Applies a rule update: only the updated device re-checks.
    pub fn incremental(&mut self, net: &mut Network, update: &RuleUpdate) -> LocalSimResult {
        self.clock.reset();
        net.apply(update);
        let mut out = LocalSimResult::default();
        self.check_device(update.device(), &mut out, Some(update), Some(net));
        out
    }

    /// The runtime observability surface (per-device init/busy time).
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_core::planner::Planner;
    use tulkun_core::spec::table1;
    use tulkun_datasets::{by_name, Scale};
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};

    #[test]
    fn dc_local_contracts_run_in_parallel() {
        let d = by_name("FT-48", Scale::Tiny).unwrap();
        let (dst, prefix) = d.network.topology.external_map().next().unwrap();
        let dst_name = d.network.topology.name(dst).to_string();
        let some_tor = d
            .network
            .topology
            .devices()
            .find(|x| d.network.topology.name(*x).starts_with("tor") && *x != dst)
            .unwrap();
        let src_name = d.network.topology.name(some_tor).to_string();
        let inv = table1::all_shortest_path(PacketSpace::DstPrefix(prefix), &src_name, &dst_name)
            .unwrap();
        let plan = Planner::new(&d.network.topology).plan(&inv).unwrap();
        let lp = plan.local().unwrap();
        let mut sim = LocalSim::new(
            &d.network,
            lp,
            &plan.invariant.packet_space,
            SwitchModel::MELLANOX,
        );
        let r = sim.burst();
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.completion_ns <= r.total_cpu_ns);
        assert!(r.completion_ns > 0);
        assert!(sim.stats().per_device.values().any(|s| s.busy_ns > 0));

        // Break the ECMP group at one aggregation switch.
        let mut net = d.network.clone();
        let agg = net
            .topology
            .devices()
            .find(|x| net.topology.name(*x).starts_with("agg"))
            .unwrap();
        let up = RuleUpdate::Insert {
            device: agg,
            rule: Rule {
                priority: 99,
                matches: MatchSpec::dst(prefix),
                action: Action::Drop,
            },
        };
        let r = sim.incremental(&mut net, &up);
        assert!(!r.violations.is_empty());
    }
}
