//! Simulated execution of `equal`-operator local contracts (RCDC-style):
//! every device checks its contracts in parallel with no communication,
//! so verification time is the slowest device's measured check time.

use crate::models::SwitchModel;
use std::collections::BTreeMap;
use std::time::Instant;
use tulkun_core::localcheck::{ContractViolation, LocalChecker};
use tulkun_core::planner::{LocalContract, LocalPlan};
use tulkun_core::spec::PacketSpace;
use tulkun_core::verify::compile_packet_space;
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::DeviceId;

/// Outcome of a local-contract round.
#[derive(Debug, Clone, Default)]
pub struct LocalSimResult {
    /// Max scaled per-device check time (devices run in parallel).
    pub completion_ns: u64,
    /// Sum of all device check times (the centralized-equivalent cost).
    pub total_cpu_ns: u64,
    /// Scaled check time per participating device.
    pub per_device: Vec<(DeviceId, u64)>,
    /// Contract violations found.
    pub violations: Vec<ContractViolation>,
}

/// The set of per-device checkers for one local plan.
pub struct LocalSim {
    model: SwitchModel,
    checkers: BTreeMap<DeviceId, LocalChecker>,
}

impl LocalSim {
    /// Builds one checker per device holding contracts.
    pub fn new(net: &Network, plan: &LocalPlan, ps: &PacketSpace, model: SwitchModel) -> LocalSim {
        let mut cache = crate::event::LecCache::new();
        Self::new_cached(net, plan, ps, model, &mut cache)
    }

    /// Like [`LocalSim::new`], sharing a per-device LEC cache across
    /// invariants (the §8 architecture: one LEC table per device).
    pub fn new_cached(
        net: &Network,
        plan: &LocalPlan,
        ps: &PacketSpace,
        model: SwitchModel,
        lec_cache: &mut crate::event::LecCache,
    ) -> LocalSim {
        let psp = compile_packet_space(&net.layout, ps);
        let mut by_dev: BTreeMap<DeviceId, Vec<LocalContract>> = BTreeMap::new();
        for c in &plan.contracts {
            by_dev.entry(c.dev).or_default().push(c.clone());
        }
        let checkers = by_dev
            .into_iter()
            .map(|(dev, contracts)| {
                let cached = lec_cache.get(&dev);
                let mut checker = LocalChecker::new_with_lecs(
                    dev,
                    net.layout,
                    net.fib(dev).clone(),
                    contracts,
                    &psp,
                    cached.map(Vec::as_slice),
                );
                if cached.is_none() {
                    lec_cache.insert(dev, checker.export_lecs());
                }
                (dev, checker)
            })
            .collect();
        LocalSim { model, checkers }
    }

    /// Runs every device's checks (burst).
    pub fn burst(&mut self) -> LocalSimResult {
        let mut out = LocalSimResult::default();
        for (dev, checker) in self.checkers.iter_mut() {
            let wall = Instant::now();
            let v = checker.check();
            let ns = self.model.scale_ns(wall.elapsed().as_nanos() as u64);
            out.completion_ns = out.completion_ns.max(ns);
            out.total_cpu_ns += ns;
            out.per_device.push((*dev, ns));
            out.violations.extend(v);
        }
        out
    }

    /// Applies a rule update: only the updated device re-checks.
    pub fn incremental(&mut self, net: &mut Network, update: &RuleUpdate) -> LocalSimResult {
        net.apply(update);
        let dev = update.device();
        let mut out = LocalSimResult::default();
        if let Some(checker) = self.checkers.get_mut(&dev) {
            let wall = Instant::now();
            checker.update_fib(net.fib(dev).clone());
            let v = checker.check();
            let ns = self.model.scale_ns(wall.elapsed().as_nanos() as u64);
            out.completion_ns = ns;
            out.total_cpu_ns = ns;
            out.per_device.push((dev, ns));
            out.violations = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_core::planner::Planner;
    use tulkun_core::spec::table1;
    use tulkun_datasets::{by_name, Scale};
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};

    #[test]
    fn dc_local_contracts_run_in_parallel() {
        let d = by_name("FT-48", Scale::Tiny).unwrap();
        let (dst, prefix) = d.network.topology.external_map().next().unwrap();
        let dst_name = d.network.topology.name(dst).to_string();
        let some_tor = d
            .network
            .topology
            .devices()
            .find(|x| d.network.topology.name(*x).starts_with("tor") && *x != dst)
            .unwrap();
        let src_name = d.network.topology.name(some_tor).to_string();
        let inv = table1::all_shortest_path(PacketSpace::DstPrefix(prefix), &src_name, &dst_name)
            .unwrap();
        let plan = Planner::new(&d.network.topology).plan(&inv).unwrap();
        let lp = plan.local().unwrap();
        let mut sim = LocalSim::new(
            &d.network,
            lp,
            &plan.invariant.packet_space,
            SwitchModel::MELLANOX,
        );
        let r = sim.burst();
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.completion_ns <= r.total_cpu_ns);
        assert!(r.completion_ns > 0);

        // Break the ECMP group at one aggregation switch.
        let mut net = d.network.clone();
        let agg = net
            .topology
            .devices()
            .find(|x| net.topology.name(*x).starts_with("agg"))
            .unwrap();
        let up = RuleUpdate::Insert {
            device: agg,
            rule: Rule {
                priority: 99,
                matches: MatchSpec::dst(prefix),
                action: Action::Drop,
            },
        };
        let r = sim.incremental(&mut net, &up);
        assert!(!r.violations.is_empty());
    }
}
