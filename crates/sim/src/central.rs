//! The centralized-baseline harness: models the paper's methodology for
//! centralized DPV tools (§9.3.1) — "we randomly assign a device as the
//! location of the verifier, and let all devices send it their data
//! planes along lowest-latency paths" — then adds the tool's measured
//! compute time. The collection timing is the runtime layer's
//! [`CollectionClock`]; compute is timed with [`runtime::measure`].

use crate::runtime::{self, CollectionClock};
use tulkun_baselines::{BaselineReport, CentralizedDpv, Workload};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::DeviceId;

/// Outcome of one centralized run.
#[derive(Debug, Clone, Copy)]
pub struct CentralRun {
    /// Latency for the data (rules/updates) to reach the verifier.
    pub collect_latency_ns: u64,
    /// Measured compute time of the tool.
    pub verify_ns: u64,
    /// End-to-end verification time.
    pub total_ns: u64,
    /// The tool's verdict.
    pub report: BaselineReport,
    /// Tool data-structure memory after the run.
    pub memory_bytes: usize,
}

/// Serialized size of one rule on the management network, in bytes.
pub const RULE_WIRE_BYTES: u64 = 48;

/// Management-network bandwidth into the verifier, bits per second.
pub const MGMT_BANDWIDTH_BPS: u64 = 1_000_000_000;

/// Runs a burst verification on a centralized tool: every device ships
/// its data plane to `verifier_loc` (max lowest-latency path, plus the
/// serialization time of all rules through the verifier's management
/// uplink), then the tool verifies.
pub fn central_burst(
    tool: &mut dyn CentralizedDpv,
    net: &Network,
    workload: &Workload,
    verifier_loc: DeviceId,
) -> CentralRun {
    let clock = CollectionClock::new(&net.topology, verifier_loc, MGMT_BANDWIDTH_BPS);
    let collect = clock.collect_all(net.total_rules() as u64 * RULE_WIRE_BYTES);
    let (report, verify_ns) = runtime::measure(|| tool.verify_burst(net, workload));
    CentralRun {
        collect_latency_ns: collect,
        verify_ns,
        total_ns: collect + verify_ns,
        report,
        memory_bytes: tool.memory_bytes(),
    }
}

/// Runs one incremental update: the update travels from its device to
/// the verifier, then the tool re-verifies.
pub fn central_update(
    tool: &mut dyn CentralizedDpv,
    net: &Network,
    update: &RuleUpdate,
    verifier_loc: DeviceId,
) -> CentralRun {
    let clock = CollectionClock::new(&net.topology, verifier_loc, MGMT_BANDWIDTH_BPS);
    let collect = clock.collect_from(update.device());
    let (report, verify_ns) = runtime::measure(|| tool.apply_update(update));
    CentralRun {
        collect_latency_ns: collect,
        verify_ns,
        total_ns: collect + verify_ns,
        report,
        memory_bytes: tool.memory_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_baselines::deltanet::DeltaNet;
    use tulkun_datasets::{by_name, rule_updates, Scale};

    #[test]
    fn burst_and_update_timing() {
        let d = by_name("INet2", Scale::Tiny).unwrap();
        let wl = Workload::all_pairs(&d.network);
        let loc = d.network.topology.devices().next().unwrap();
        let mut tool = DeltaNet::new();
        let run = central_burst(&mut tool, &d.network, &wl, loc);
        assert_eq!(run.report.violations, 0);
        assert!(
            run.collect_latency_ns > 0,
            "WAN collection latency must be nonzero"
        );
        assert!(run.total_ns >= run.verify_ns);

        for u in rule_updates(&d.network, 5, 11) {
            let r = central_update(&mut tool, &d.network, &u, loc);
            assert!(r.total_ns >= r.collect_latency_ns);
        }
    }
}
