//! Regex AST and parser.

use std::fmt;

/// A class of symbols (devices) matched by one path step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymClass {
    /// `.` — any device.
    Any,
    /// A named device.
    One(String),
    /// `[A B C]` — any of the listed devices.
    In(Vec<String>),
    /// `[^A B C]` — any device except the listed ones.
    NotIn(Vec<String>),
}

impl SymClass {
    /// Does the class match the device `name`?
    pub fn matches(&self, name: &str) -> bool {
        match self {
            SymClass::Any => true,
            SymClass::One(d) => d == name,
            SymClass::In(ds) => ds.iter().any(|d| d == name),
            SymClass::NotIn(ds) => !ds.iter().any(|d| d == name),
        }
    }

    /// Device names referenced by the class (for validation).
    pub fn referenced(&self) -> Vec<&str> {
        match self {
            SymClass::Any => Vec::new(),
            SymClass::One(d) => vec![d.as_str()],
            SymClass::In(ds) | SymClass::NotIn(ds) => ds.iter().map(String::as_str).collect(),
        }
    }
}

/// A regular expression over device names.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// Matches nothing.
    Empty,
    /// Matches the empty path.
    Epsilon,
    /// Matches one device from a class.
    Sym(SymClass),
    /// Concatenation.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
}

impl Regex {
    /// One named device.
    pub fn dev(name: impl Into<String>) -> Regex {
        Regex::Sym(SymClass::One(name.into()))
    }

    /// `.` — any device.
    pub fn any() -> Regex {
        Regex::Sym(SymClass::Any)
    }

    /// `.*` — any path segment (including empty).
    pub fn any_star() -> Regex {
        Regex::Star(Box::new(Regex::any()))
    }

    /// Concatenation of many parts.
    pub fn seq(parts: impl IntoIterator<Item = Regex>) -> Regex {
        parts
            .into_iter()
            .reduce(|a, b| Regex::Concat(Box::new(a), Box::new(b)))
            .unwrap_or(Regex::Epsilon)
    }

    /// Alternation of many parts.
    pub fn alts(parts: impl IntoIterator<Item = Regex>) -> Regex {
        parts
            .into_iter()
            .reduce(|a, b| Regex::Alt(Box::new(a), Box::new(b)))
            .unwrap_or(Regex::Empty)
    }

    /// All device names referenced by the expression (for validating
    /// against a topology).
    pub fn referenced_devices(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Sym(c) => out.extend(c.referenced()),
            Regex::Concat(a, b) | Regex::Alt(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            Regex::Star(a) => a.collect_refs(out),
        }
    }

    /// Parses the paper's surface syntax. Grammar:
    ///
    /// ```text
    /// alt    := cat ('|' cat)*
    /// cat    := rep+
    /// rep    := atom ('*' | '+' | '?')*
    /// atom   := DEVICE | '.' | '(' alt ')' | '[' '^'? DEVICE+ ']'
    /// DEVICE := [A-Za-z0-9_-]+
    /// ```
    ///
    /// Whitespace separates tokens but is otherwise insignificant, so both
    /// `S .* W .* D` and `S.*W.*D` parse (device names are maximal
    /// identifier runs; in the compact form a name boundary is any
    /// non-identifier character).
    pub fn parse(input: &str) -> Result<Regex, ParseError> {
        let tokens = lex(input)?;
        let mut p = Parser { tokens, pos: 0 };
        let re = p.alt()?;
        if p.pos != p.tokens.len() {
            return Err(ParseError::new(format!("unexpected token at {}", p.pos)));
        }
        Ok(re)
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Empty => write!(f, "∅"),
            Regex::Epsilon => write!(f, "ε"),
            Regex::Sym(SymClass::Any) => write!(f, "."),
            Regex::Sym(SymClass::One(d)) => write!(f, "{d}"),
            Regex::Sym(SymClass::In(ds)) => write!(f, "[{}]", ds.join(" ")),
            Regex::Sym(SymClass::NotIn(ds)) => write!(f, "[^{}]", ds.join(" ")),
            Regex::Concat(a, b) => write!(f, "{a} {b}"),
            Regex::Alt(a, b) => write!(f, "({a}|{b})"),
            Regex::Star(a) => match &**a {
                Regex::Sym(_) => write!(f, "{a}*"),
                _ => write!(f, "({a})*"),
            },
        }
    }
}

/// A regex parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl ParseError {
    fn new(msg: impl Into<String>) -> Self {
        ParseError(msg.into())
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Dev(String),
    Dot,
    Star,
    Plus,
    Quest,
    Pipe,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Caret,
}

fn lex(input: &str) -> Result<Vec<Tok>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '.' => {
                chars.next();
                out.push(Tok::Dot);
            }
            '*' => {
                chars.next();
                out.push(Tok::Star);
            }
            '+' => {
                chars.next();
                out.push(Tok::Plus);
            }
            '?' => {
                chars.next();
                out.push(Tok::Quest);
            }
            '|' => {
                chars.next();
                out.push(Tok::Pipe);
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '[' => {
                chars.next();
                out.push(Tok::LBracket);
            }
            ']' => {
                chars.next();
                out.push(Tok::RBracket);
            }
            '^' => {
                chars.next();
                out.push(Tok::Caret);
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Dev(name));
            }
            other => return Err(ParseError::new(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn alt(&mut self) -> Result<Regex, ParseError> {
        let mut lhs = self.cat()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.pos += 1;
            let rhs = self.cat()?;
            lhs = Regex::Alt(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = Vec::new();
        while matches!(
            self.peek(),
            Some(Tok::Dev(_)) | Some(Tok::Dot) | Some(Tok::LParen) | Some(Tok::LBracket)
        ) {
            parts.push(self.rep()?);
        }
        if parts.is_empty() {
            return Err(ParseError::new("expected a device, '.', '(' or '['"));
        }
        Ok(Regex::seq(parts))
    }

    fn rep(&mut self) -> Result<Regex, ParseError> {
        let mut atom = self.atom()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    atom = Regex::Star(Box::new(atom));
                }
                Some(Tok::Plus) => {
                    self.pos += 1;
                    atom = Regex::Concat(
                        Box::new(atom.clone()),
                        Box::new(Regex::Star(Box::new(atom))),
                    );
                }
                Some(Tok::Quest) => {
                    self.pos += 1;
                    atom = Regex::Alt(Box::new(atom), Box::new(Regex::Epsilon));
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Dev(name)) => {
                self.pos += 1;
                Ok(Regex::dev(name))
            }
            Some(Tok::Dot) => {
                self.pos += 1;
                Ok(Regex::any())
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.alt()?;
                if self.peek() != Some(&Tok::RParen) {
                    return Err(ParseError::new("expected ')'"));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(Tok::LBracket) => {
                self.pos += 1;
                let negated = if self.peek() == Some(&Tok::Caret) {
                    self.pos += 1;
                    true
                } else {
                    false
                };
                let mut devs = Vec::new();
                while let Some(Tok::Dev(name)) = self.peek().cloned() {
                    self.pos += 1;
                    devs.push(name);
                }
                if self.peek() != Some(&Tok::RBracket) {
                    return Err(ParseError::new("expected ']'"));
                }
                self.pos += 1;
                if devs.is_empty() {
                    return Err(ParseError::new("empty device class"));
                }
                Ok(Regex::Sym(if negated {
                    SymClass::NotIn(devs)
                } else {
                    SymClass::In(devs)
                }))
            }
            other => Err(ParseError::new(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_waypoint() {
        let re = Regex::parse("S .* W .* D").unwrap();
        let compact = Regex::parse("S.*W.*D").unwrap();
        assert_eq!(re, compact);
        assert_eq!(re.referenced_devices(), vec!["D", "S", "W"]);
    }

    #[test]
    fn parses_limited_length() {
        // SD | S.D | S..D (reachability with limited path length, Table 1).
        let re = Regex::parse("S D | S . D | S . . D").unwrap();
        match re {
            Regex::Alt(..) => {}
            other => panic!("expected alternation, got {other}"),
        }
    }

    #[test]
    fn parses_classes() {
        let re = Regex::parse("[^X Y]* X [^X]*").unwrap();
        let devs = re.referenced_devices();
        assert_eq!(devs, vec!["X", "Y"]);
        let Regex::Concat(..) = re else {
            panic!("expected concat")
        };
    }

    #[test]
    fn parses_plus_and_question() {
        let re = Regex::parse("A+ B?").unwrap();
        // A+ desugars to A A*.
        assert_eq!(
            re,
            Regex::seq([
                Regex::Concat(
                    Box::new(Regex::dev("A")),
                    Box::new(Regex::Star(Box::new(Regex::dev("A"))))
                ),
                Regex::Alt(Box::new(Regex::dev("B")), Box::new(Regex::Epsilon)),
            ])
        );
    }

    #[test]
    fn rejects_garbage() {
        for s in ["", "S |", "(S", "S)", "[]", "[^]", "S $ D"] {
            assert!(Regex::parse(s).is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn multi_char_device_names() {
        let re = Regex::parse("core-1 .* edge_5").unwrap();
        assert_eq!(re.referenced_devices(), vec!["core-1", "edge_5"]);
    }

    #[test]
    fn display_round_trips() {
        for s in ["S .* W .* D", "(A|B) C*", "[^X Y]* X", "[A B] ."] {
            let re = Regex::parse(s).unwrap();
            let re2 = Regex::parse(&re.to_string()).unwrap();
            assert_eq!(re, re2, "display of {s:?} did not round trip: {re}");
        }
    }

    #[test]
    fn symclass_matches() {
        assert!(SymClass::Any.matches("X"));
        assert!(SymClass::One("X".into()).matches("X"));
        assert!(!SymClass::One("X".into()).matches("Y"));
        assert!(SymClass::In(vec!["A".into(), "B".into()]).matches("B"));
        assert!(!SymClass::NotIn(vec!["A".into()]).matches("A"));
        assert!(SymClass::NotIn(vec!["A".into()]).matches("B"));
    }
}
