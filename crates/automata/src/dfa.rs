//! Subset construction against a concrete device alphabet, plus Hopcroft
//! minimization.
//!
//! The DFA produced here is the finite automaton `(Σ, Q, F, q0, δ)` of
//! §4.1, with `Σ` the device identifiers of a concrete topology. The
//! planner multiplies it with the topology graph to obtain DPVNet.

use crate::ast::Regex;
use crate::nfa::Nfa;
use std::collections::HashMap;

/// A complete deterministic automaton over device indices `0..alphabet_size`.
///
/// All states have a transition for every symbol; non-accepting sink
/// behaviour is encoded by a dead state (if the language needs one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    /// `trans[state * alphabet_size + symbol]` = next state.
    trans: Vec<u32>,
    accept: Vec<bool>,
    start: u32,
    alphabet_size: usize,
}

impl Dfa {
    /// Compiles a regex against a concrete alphabet of device names
    /// (symbol `i` is `alphabet[i]`), then minimizes the result.
    pub fn compile(re: &Regex, alphabet: &[String]) -> Dfa {
        let nfa = Nfa::from_regex(re);
        let dfa = subset_construction(&nfa, alphabet);
        dfa.minimize()
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.accept.len()
    }

    /// Alphabet size.
    pub fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    /// Initial state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Is the state accepting?
    pub fn is_accepting(&self, state: u32) -> bool {
        self.accept[state as usize]
    }

    /// The transition `δ(state, symbol)`.
    pub fn step(&self, state: u32, symbol: usize) -> u32 {
        self.trans[state as usize * self.alphabet_size + symbol]
    }

    /// Can any accepting state be reached from `state` (including by the
    /// empty suffix)? Precomputed callers should use [`Dfa::live_states`].
    pub fn accepts(&self, path: impl IntoIterator<Item = usize>) -> bool {
        let mut s = self.start;
        for sym in path {
            s = self.step(s, sym);
        }
        self.is_accepting(s)
    }

    /// The length of the longest accepted word, or `None` when the
    /// language is infinite (a cycle of live states is reachable from
    /// the start). Finite languages give DPVNet construction an
    /// intrinsic hop bound.
    pub fn max_word_len(&self) -> Option<u32> {
        let live = self.live_states();
        if !live[self.start as usize] {
            return Some(0); // empty language
        }
        // Longest path through live states from start; DFS with color
        // marking detects cycles.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.num_states();
        let mut color = vec![Color::White; n];
        let mut depth = vec![0u32; n];
        // Iterative DFS with an explicit stack.
        let mut stack: Vec<(u32, usize, bool)> = vec![(self.start, 0, false)];
        while let Some((s, sym, expanded)) = stack.pop() {
            let si = s as usize;
            if !expanded {
                if sym == 0 {
                    match color[si] {
                        Color::Black => continue,
                        Color::Gray => return None, // cycle
                        Color::White => color[si] = Color::Gray,
                    }
                }
                if sym < self.alphabet_size {
                    stack.push((s, sym + 1, false));
                    let t = self.step(s, sym);
                    let ti = t as usize;
                    if live[ti] {
                        match color[ti] {
                            Color::Gray => return None, // cycle
                            Color::Black => {
                                depth[si] = depth[si].max(1 + depth[ti]);
                            }
                            Color::White => {
                                stack.push((s, sym, true)); // resume to fold t's depth
                                stack.push((t, 0, false));
                            }
                        }
                    }
                } else {
                    color[si] = Color::Black;
                }
            } else {
                // Child (via `sym`) fully explored: fold its depth.
                let t = self.step(s, sym);
                depth[si] = depth[si].max(1 + depth[t as usize]);
            }
        }
        Some(depth[self.start as usize])
    }

    /// For every state, whether some suffix leads to acceptance ("live").
    /// Dead states can be pruned during product construction.
    pub fn live_states(&self) -> Vec<bool> {
        // Reverse reachability from accepting states.
        let n = self.num_states();
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for s in 0..n {
            for a in 0..self.alphabet_size {
                let t = self.step(s as u32, a);
                rev[t as usize].push(s as u32);
            }
        }
        let mut live = vec![false; n];
        let mut stack: Vec<u32> = (0..n as u32).filter(|&s| self.accept[s as usize]).collect();
        for &s in &stack {
            live[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s as usize] {
                if !live[p as usize] {
                    live[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        live
    }

    /// Hopcroft minimization. Unreachable states are removed first.
    pub fn minimize(&self) -> Dfa {
        let reachable = self.reachable_states();
        // Remap to compact reachable-only indices.
        let mut remap = vec![u32::MAX; self.num_states()];
        let mut order = Vec::new();
        for (i, &r) in reachable.iter().enumerate() {
            if r {
                remap[i] = order.len() as u32;
                order.push(i);
            }
        }
        let n = order.len();
        let k = self.alphabet_size;
        let step = |s: usize, a: usize| remap[self.step(order[s] as u32, a) as usize] as usize;

        // Initial partition: accepting vs non-accepting.
        let mut class = vec![0usize; n];
        for (i, &orig) in order.iter().enumerate() {
            class[i] = usize::from(self.accept[orig]);
        }
        let mut num_classes = if class.contains(&1) && class.contains(&0) {
            2
        } else {
            1
        };
        if num_classes == 1 {
            // Normalize to class 0.
            class.iter_mut().for_each(|c| *c = 0);
        }

        // Iterative refinement (Moore's algorithm; O(k·n²) worst case but
        // our automata are tiny — invariant regexes have a handful of
        // states).
        loop {
            let mut sig_map: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
            let mut next_class = vec![0usize; n];
            for s in 0..n {
                let sig: Vec<usize> = (0..k).map(|a| class[step(s, a)]).collect();
                let id = sig_map.len();
                let e = sig_map.entry((class[s], sig)).or_insert(id);
                next_class[s] = *e;
            }
            let next_num = sig_map.len();
            if next_num == num_classes {
                class = next_class;
                break;
            }
            class = next_class;
            num_classes = next_num;
        }

        let mut trans = vec![0u32; num_classes * k];
        let mut accept = vec![false; num_classes];
        for s in 0..n {
            let c = class[s];
            accept[c] |= self.accept[order[s]];
            for a in 0..k {
                trans[c * k + a] = class[step(s, a)] as u32;
            }
        }
        let start = class[remap[self.start as usize] as usize] as u32;
        Dfa {
            trans,
            accept,
            start,
            alphabet_size: k,
        }
    }

    fn reachable_states(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            for a in 0..self.alphabet_size {
                let t = self.step(s, a);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }
}

fn subset_construction(nfa: &Nfa, alphabet: &[String]) -> Dfa {
    let k = alphabet.len();
    let start_set = nfa.eps_closure(&[nfa.start]);
    let mut sets: HashMap<Vec<usize>, u32> = HashMap::new();
    let mut order: Vec<Vec<usize>> = Vec::new();
    sets.insert(start_set.clone(), 0);
    order.push(start_set);
    let mut trans: Vec<u32> = Vec::new();
    let mut i = 0;
    while i < order.len() {
        let cur = order[i].clone();
        for letter in alphabet {
            let mut next = Vec::new();
            for &s in &cur {
                for (class, t) in &nfa.trans[s] {
                    if class.matches(letter) {
                        next.push(*t);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            let closure = nfa.eps_closure(&next);
            let id = match sets.get(&closure) {
                Some(&id) => id,
                None => {
                    let id = order.len() as u32;
                    sets.insert(closure.clone(), id);
                    order.push(closure);
                    id
                }
            };
            trans.push(id);
        }
        i += 1;
    }
    let accept = order.iter().map(|set| set.contains(&nfa.accept)).collect();
    Dfa {
        trans,
        accept,
        start: 0,
        alphabet_size: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alpha(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn idx(alphabet: &[String], name: &str) -> usize {
        alphabet.iter().position(|a| a == name).unwrap()
    }

    fn path(alphabet: &[String], names: &[&str]) -> Vec<usize> {
        names.iter().map(|n| idx(alphabet, n)).collect()
    }

    #[test]
    fn waypoint_dfa_matches_figure_4() {
        // Fig. 4: the DFA of S.*W.*D over Σ={S,W,A,B,D} has 4 live states
        // (start, saw-S, saw-W, accept) plus a dead state.
        let alphabet = alpha(&["S", "W", "A", "B", "D"]);
        let re = Regex::parse("S .* W .* D").unwrap();
        let dfa = Dfa::compile(&re, &alphabet);
        assert!(dfa.accepts(path(&alphabet, &["S", "W", "D"])));
        assert!(dfa.accepts(path(&alphabet, &["S", "A", "W", "B", "D"])));
        assert!(dfa.accepts(path(&alphabet, &["S", "W", "D", "W", "D"])));
        assert!(!dfa.accepts(path(&alphabet, &["S", "A", "B", "D"])));
        assert!(!dfa.accepts(path(&alphabet, &["A", "W", "D"])));
        assert_eq!(dfa.num_states(), 5);
        let live = dfa.live_states();
        assert_eq!(live.iter().filter(|&&l| l).count(), 4);
    }

    #[test]
    fn minimization_merges_equivalent_states() {
        let alphabet = alpha(&["A", "B"]);
        // (A|B)(A|B) — exactly two steps; unminimized subset DFA may have
        // redundant states but minimal has 4 (start, after-1, accept, dead).
        let re = Regex::parse("(A|B)(A|B)").unwrap();
        let dfa = Dfa::compile(&re, &alphabet);
        assert_eq!(dfa.num_states(), 4);
        assert!(dfa.accepts(path(&alphabet, &["A", "B"])));
        assert!(!dfa.accepts(path(&alphabet, &["A"])));
        assert!(!dfa.accepts(path(&alphabet, &["A", "B", "A"])));
    }

    #[test]
    fn empty_language() {
        let alphabet = alpha(&["A"]);
        let dfa = Dfa::compile(&Regex::Empty, &alphabet);
        assert!(!dfa.accepts(path(&alphabet, &[])));
        assert!(!dfa.accepts(path(&alphabet, &["A"])));
        assert_eq!(dfa.num_states(), 1); // single dead state
        assert!(dfa.live_states().iter().all(|&l| !l));
    }

    #[test]
    fn universal_language() {
        let alphabet = alpha(&["A", "B"]);
        let dfa = Dfa::compile(&Regex::parse(".*").unwrap(), &alphabet);
        assert_eq!(dfa.num_states(), 1);
        assert!(dfa.accepts(path(&alphabet, &[])));
        assert!(dfa.accepts(path(&alphabet, &["A", "B", "B"])));
    }

    #[test]
    fn alternation_with_shared_suffix() {
        let alphabet = alpha(&["S", "X", "Y", "D"]);
        let re = Regex::parse("S X D | S Y D").unwrap();
        let dfa = Dfa::compile(&re, &alphabet);
        assert!(dfa.accepts(path(&alphabet, &["S", "X", "D"])));
        assert!(dfa.accepts(path(&alphabet, &["S", "Y", "D"])));
        assert!(!dfa.accepts(path(&alphabet, &["S", "D"])));
        // Minimality: start, after-S, {X,Y merged}, accept, dead → 5 states.
        assert_eq!(dfa.num_states(), 5);
    }

    #[test]
    fn negated_class_dfa() {
        let alphabet = alpha(&["S", "W", "D"]);
        let re = Regex::parse("S [^W]* D").unwrap();
        let dfa = Dfa::compile(&re, &alphabet);
        assert!(dfa.accepts(path(&alphabet, &["S", "D"])));
        assert!(dfa.accepts(path(&alphabet, &["S", "S", "D"])));
        assert!(!dfa.accepts(path(&alphabet, &["S", "W", "D"])));
    }

    #[test]
    fn step_is_total() {
        let alphabet = alpha(&["A", "B", "C"]);
        let dfa = Dfa::compile(&Regex::parse("A B").unwrap(), &alphabet);
        for s in 0..dfa.num_states() as u32 {
            for a in 0..dfa.alphabet_size() {
                let t = dfa.step(s, a);
                assert!((t as usize) < dfa.num_states());
            }
        }
    }
}
