#![warn(missing_docs)]
//! Regular expressions over device names, compiled to minimal DFAs.
//!
//! Tulkun invariants constrain packet *paths* with regular expressions
//! whose alphabet is the set of network devices (§3, §4.1): `S .* W .* D`
//! is "start at S, later pass W, end at D". This crate provides:
//!
//! * [`ast`] — the regex AST and a parser for the paper's surface syntax
//!   (device names, `.` wildcard, `[^A B]` negated classes, `[A B]`
//!   classes, `*`, `+`, `?`, `|`, parentheses, juxtaposition for
//!   concatenation).
//! * [`nfa`] — Thompson construction.
//! * [`dfa`] — subset construction against a concrete device alphabet and
//!   Hopcroft minimization, producing the finite automaton the planner
//!   multiplies with the topology (Figure 4 of the paper).
//!
//! # Example
//!
//! ```
//! use tulkun_automata::{ast::Regex, dfa::Dfa};
//!
//! let re = Regex::parse("S .* W .* D").unwrap();
//! let alphabet = ["S", "A", "B", "W", "D"].map(String::from).to_vec();
//! let dfa = Dfa::compile(&re, &alphabet);
//! let idx = |s: &str| alphabet.iter().position(|a| a == s).unwrap();
//! assert!(dfa.accepts([idx("S"), idx("A"), idx("W"), idx("D")]));
//! assert!(!dfa.accepts([idx("S"), idx("A"), idx("B"), idx("D")])); // misses W
//! ```

pub mod ast;
pub mod dfa;
pub mod nfa;

pub use ast::Regex;
pub use dfa::Dfa;
