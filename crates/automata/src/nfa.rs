//! Thompson construction: regex → NFA with epsilon transitions.

use crate::ast::{Regex, SymClass};

/// NFA state index.
pub type StateId = usize;

/// A Thompson NFA over symbol classes.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Per state: transitions labeled with a symbol class.
    pub trans: Vec<Vec<(SymClass, StateId)>>,
    /// Per state: epsilon transitions.
    pub eps: Vec<Vec<StateId>>,
    /// Initial state.
    pub start: StateId,
    /// The unique accepting state (Thompson construction invariant).
    pub accept: StateId,
}

impl Nfa {
    /// Builds the NFA for a regex.
    pub fn from_regex(re: &Regex) -> Nfa {
        let mut b = Builder {
            trans: Vec::new(),
            eps: Vec::new(),
        };
        let (start, accept) = b.build(re);
        Nfa {
            trans: b.trans,
            eps: b.eps,
            start,
            accept,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// Epsilon closure of a set of states (sorted, deduplicated).
    pub fn eps_closure(&self, states: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.num_states()];
        let mut stack: Vec<StateId> = states.to_vec();
        for &s in states {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }
}

struct Builder {
    trans: Vec<Vec<(SymClass, StateId)>>,
    eps: Vec<Vec<StateId>>,
}

impl Builder {
    fn state(&mut self) -> StateId {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        self.trans.len() - 1
    }

    fn build(&mut self, re: &Regex) -> (StateId, StateId) {
        match re {
            Regex::Empty => {
                let s = self.state();
                let a = self.state();
                (s, a) // no transition: accepts nothing
            }
            Regex::Epsilon => {
                let s = self.state();
                let a = self.state();
                self.eps[s].push(a);
                (s, a)
            }
            Regex::Sym(c) => {
                let s = self.state();
                let a = self.state();
                self.trans[s].push((c.clone(), a));
                (s, a)
            }
            Regex::Concat(x, y) => {
                let (xs, xa) = self.build(x);
                let (ys, ya) = self.build(y);
                self.eps[xa].push(ys);
                (xs, ya)
            }
            Regex::Alt(x, y) => {
                let s = self.state();
                let a = self.state();
                let (xs, xa) = self.build(x);
                let (ys, ya) = self.build(y);
                self.eps[s].push(xs);
                self.eps[s].push(ys);
                self.eps[xa].push(a);
                self.eps[ya].push(a);
                (s, a)
            }
            Regex::Star(x) => {
                let s = self.state();
                let a = self.state();
                let (xs, xa) = self.build(x);
                self.eps[s].push(xs);
                self.eps[s].push(a);
                self.eps[xa].push(xs);
                self.eps[xa].push(a);
                (s, a)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulate(nfa: &Nfa, path: &[&str]) -> bool {
        let mut cur = nfa.eps_closure(&[nfa.start]);
        for step in path {
            let mut next = Vec::new();
            for &s in &cur {
                for (class, t) in &nfa.trans[s] {
                    if class.matches(step) {
                        next.push(*t);
                    }
                }
            }
            cur = nfa.eps_closure(&next);
            if cur.is_empty() {
                return false;
            }
        }
        cur.contains(&nfa.accept)
    }

    #[test]
    fn waypoint_nfa() {
        let re = Regex::parse("S .* W .* D").unwrap();
        let nfa = Nfa::from_regex(&re);
        assert!(simulate(&nfa, &["S", "W", "D"]));
        assert!(simulate(&nfa, &["S", "A", "W", "B", "D"]));
        assert!(!simulate(&nfa, &["S", "A", "D"]));
        assert!(!simulate(&nfa, &["S", "W"]));
        assert!(!simulate(&nfa, &[]));
    }

    #[test]
    fn empty_and_epsilon() {
        let nfa = Nfa::from_regex(&Regex::Empty);
        assert!(!simulate(&nfa, &[]));
        assert!(!simulate(&nfa, &["X"]));
        let nfa = Nfa::from_regex(&Regex::Epsilon);
        assert!(simulate(&nfa, &[]));
        assert!(!simulate(&nfa, &["X"]));
    }

    #[test]
    fn star_accepts_zero_or_more() {
        let re = Regex::parse("A*").unwrap();
        let nfa = Nfa::from_regex(&re);
        assert!(simulate(&nfa, &[]));
        assert!(simulate(&nfa, &["A"]));
        assert!(simulate(&nfa, &["A", "A", "A"]));
        assert!(!simulate(&nfa, &["B"]));
    }

    #[test]
    fn negated_class() {
        let re = Regex::parse("S [^W]* D").unwrap();
        let nfa = Nfa::from_regex(&re);
        assert!(simulate(&nfa, &["S", "A", "B", "D"]));
        assert!(!simulate(&nfa, &["S", "W", "D"]));
        assert!(simulate(&nfa, &["S", "D"]));
    }
}
