//! Property tests: the compiled (minimized) DFA must accept exactly the
//! words a direct NFA simulation accepts, for random regexes and random
//! words; minimization must never change the language.

use proptest::prelude::*;
use tulkun_automata::ast::{Regex, SymClass};
use tulkun_automata::nfa::Nfa;
use tulkun_automata::Dfa;

const ALPHA: [&str; 4] = ["A", "B", "C", "D"];

fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        (0..ALPHA.len()).prop_map(|i| Regex::dev(ALPHA[i])),
        Just(Regex::any()),
        (0..ALPHA.len()).prop_map(|i| Regex::Sym(SymClass::NotIn(vec![ALPHA[i].into()]))),
        Just(Regex::Epsilon),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Regex::Concat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::Alt(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Regex::Star(Box::new(a))),
        ]
    })
}

fn nfa_accepts(nfa: &Nfa, word: &[usize]) -> bool {
    let mut cur = nfa.eps_closure(&[nfa.start]);
    for &sym in word {
        let mut next = Vec::new();
        for &s in &cur {
            for (class, t) in &nfa.trans[s] {
                if class.matches(ALPHA[sym]) {
                    next.push(*t);
                }
            }
        }
        cur = nfa.eps_closure(&next);
        if cur.is_empty() {
            return false;
        }
    }
    cur.contains(&nfa.accept)
}

proptest! {
    #[test]
    fn dfa_equals_nfa(re in regex_strategy(), words in proptest::collection::vec(proptest::collection::vec(0usize..ALPHA.len(), 0..8), 24)) {
        let alphabet: Vec<String> = ALPHA.iter().map(|s| s.to_string()).collect();
        let nfa = Nfa::from_regex(&re);
        let dfa = Dfa::compile(&re, &alphabet);
        for w in &words {
            prop_assert_eq!(
                dfa.accepts(w.iter().copied()),
                nfa_accepts(&nfa, w),
                "word {:?} disagrees for regex {}", w, re
            );
        }
    }

    #[test]
    fn minimization_preserves_language(re in regex_strategy(), words in proptest::collection::vec(proptest::collection::vec(0usize..ALPHA.len(), 0..8), 16)) {
        let alphabet: Vec<String> = ALPHA.iter().map(|s| s.to_string()).collect();
        let dfa = Dfa::compile(&re, &alphabet);
        let dfa2 = dfa.minimize(); // idempotent
        prop_assert!(dfa2.num_states() <= dfa.num_states());
        for w in &words {
            prop_assert_eq!(dfa.accepts(w.iter().copied()), dfa2.accepts(w.iter().copied()));
        }
    }

    #[test]
    fn max_word_len_is_exact_bound(re in regex_strategy(), words in proptest::collection::vec(proptest::collection::vec(0usize..ALPHA.len(), 0..10), 24)) {
        let alphabet: Vec<String> = ALPHA.iter().map(|s| s.to_string()).collect();
        let dfa = Dfa::compile(&re, &alphabet);
        if let Some(maxlen) = dfa.max_word_len() {
            for w in &words {
                if dfa.accepts(w.iter().copied()) {
                    prop_assert!(
                        w.len() as u32 <= maxlen,
                        "accepted word {:?} longer than claimed bound {} for {}", w, maxlen, re
                    );
                }
            }
        }
    }

    #[test]
    fn display_round_trips(re in regex_strategy()) {
        let text = re.to_string();
        // Some ASTs print to the same surface text after normalization —
        // accept any parse that produces the same language on samples.
        if let Ok(re2) = Regex::parse(&text) {
            let alphabet: Vec<String> = ALPHA.iter().map(|s| s.to_string()).collect();
            let d1 = Dfa::compile(&re, &alphabet);
            let d2 = Dfa::compile(&re2, &alphabet);
            for w in [vec![], vec![0], vec![1, 2], vec![0, 1, 2, 3], vec![3, 3, 3]] {
                prop_assert_eq!(d1.accepts(w.iter().copied()), d2.accepts(w.iter().copied()));
            }
        }
    }
}
