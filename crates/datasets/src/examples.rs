//! The paper's example networks (Figures 2a, 5a and 6a) with their data
//! planes, used by the demos, quickstart and tests.

use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
use tulkun_netmodel::network::Network;
use tulkun_netmodel::topology::Topology;
use tulkun_netmodel::IpPrefix;

fn pfx(s: &str) -> IpPrefix {
    s.parse().unwrap()
}

/// Figure 2a: the 5-device network (S, A, B, W, D) and its data plane.
///
/// * `P2 = 10.0.0.0/24`: A replicates to both B and W (`ALL`); B drops.
/// * `P3 = 10.0.1.0/24 ∧ dstPort 80`: A picks B or W (`ANY`).
/// * `P4 = 10.0.1.0/24 ∧ dstPort ≠ 80`: A forwards to W only.
///
/// The waypoint invariant of Figure 2b is violated by `P3` (in the
/// universe where A picks B, the packet reaches D without passing W —
/// wait, it *does* skip W: B forwards straight to D).
pub fn fig2a_network() -> Network {
    let mut t = Topology::new();
    let s = t.add_device("S");
    let a = t.add_device("A");
    let b = t.add_device("B");
    let w = t.add_device("W");
    let d = t.add_device("D");
    t.add_link(s, a, 1000);
    t.add_link(a, b, 1000);
    t.add_link(a, w, 1000);
    t.add_link(b, w, 1000);
    t.add_link(b, d, 1000);
    t.add_link(w, d, 1000);
    t.add_external_prefix(d, pfx("10.0.0.0/23"));

    let mut net = Network::new(t);
    net.fib_mut(s).insert(Rule {
        priority: 23,
        matches: MatchSpec::dst(pfx("10.0.0.0/23")),
        action: Action::fwd(a),
    });
    net.fib_mut(a).insert(Rule {
        priority: 30,
        matches: MatchSpec::dst(pfx("10.0.1.0/24")).with_port(80),
        action: Action::fwd_any([b, w]),
    });
    net.fib_mut(a).insert(Rule {
        priority: 20,
        matches: MatchSpec::dst(pfx("10.0.1.0/24")),
        action: Action::fwd(w),
    });
    net.fib_mut(a).insert(Rule {
        priority: 10,
        matches: MatchSpec::dst(pfx("10.0.0.0/24")),
        action: Action::fwd_all([b, w]),
    });
    net.fib_mut(b).insert(Rule {
        priority: 10,
        matches: MatchSpec::dst(pfx("10.0.0.0/24")),
        action: Action::Drop,
    });
    net.fib_mut(b).insert(Rule {
        priority: 10,
        matches: MatchSpec::dst(pfx("10.0.1.0/24")),
        action: Action::fwd(d),
    });
    net.fib_mut(w).insert(Rule {
        priority: 23,
        matches: MatchSpec::dst(pfx("10.0.0.0/23")),
        action: Action::fwd(d),
    });
    net.fib_mut(d).insert(Rule {
        priority: 23,
        matches: MatchSpec::dst(pfx("10.0.0.0/23")),
        action: Action::deliver(),
    });
    net
}

/// Figure 5a: the anycast example. S forwards to either A (toward D) or
/// B (toward E) — the invariant "reach D or E but not both" holds, but
/// the per-destination cross-product strawman would flag it.
pub fn fig5a_network() -> Network {
    let mut t = Topology::new();
    let s = t.add_device("S");
    let a = t.add_device("A");
    let b = t.add_device("B");
    let d = t.add_device("D");
    let e = t.add_device("E");
    t.add_link(s, a, 1000);
    t.add_link(s, b, 1000);
    t.add_link(a, d, 1000);
    t.add_link(b, e, 1000);
    t.add_external_prefix(d, pfx("10.1.0.0/24"));
    t.add_external_prefix(e, pfx("10.1.0.0/24"));

    let mut net = Network::new(t);
    let p = pfx("10.1.0.0/24");
    net.fib_mut(s).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd_any([a, b]),
    });
    net.fib_mut(a).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd(d),
    });
    net.fib_mut(b).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd(e),
    });
    net.fib_mut(d).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::deliver(),
    });
    net.fib_mut(e).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::deliver(),
    });
    net
}

/// Figure 6a: the same-destination compound example. S replicates to A
/// and B; A forwards to W then D; B forwards straight to D. The
/// invariant "≥ 2 copies reach D on simple paths, or ≥ 1 copy reaches D
/// through W" holds, but separate per-expression DPVNets cross-multiplied
/// would raise a phantom error.
pub fn fig6a_network() -> Network {
    let mut t = Topology::new();
    let s = t.add_device("S");
    let a = t.add_device("A");
    let b = t.add_device("B");
    let w = t.add_device("W");
    let d = t.add_device("D");
    t.add_link(s, a, 1000);
    t.add_link(s, b, 1000);
    t.add_link(a, w, 1000);
    t.add_link(w, d, 1000);
    t.add_link(b, d, 1000);
    t.add_external_prefix(d, pfx("10.2.0.0/24"));

    let mut net = Network::new(t);
    let p = pfx("10.2.0.0/24");
    net.fib_mut(s).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd_all([a, b]),
    });
    net.fib_mut(a).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd(w),
    });
    net.fib_mut(w).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd(d),
    });
    net.fib_mut(b).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd(d),
    });
    net.fib_mut(d).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::deliver(),
    });
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_has_expected_shape() {
        let net = fig2a_network();
        assert_eq!(net.topology.num_devices(), 5);
        assert_eq!(net.topology.num_links(), 6);
        assert_eq!(net.total_rules(), 8);
    }

    #[test]
    fn fig5a_and_fig6a_build() {
        let n5 = fig5a_network();
        assert_eq!(n5.topology.num_devices(), 5);
        let n6 = fig6a_network();
        assert_eq!(n6.topology.num_devices(), 5);
        assert!(n6.topology.connected_without(&[]));
    }
}
