#![warn(missing_docs)]
//! Evaluation datasets (Figure 10) and the paper's example networks.
//!
//! The paper evaluates 13 datasets — 4 public, the rest synthesized from
//! public topologies. The original FIBs are not redistributable, so this
//! crate *generates* each dataset: a topology reproducing the published
//! node/link counts, per-device external prefixes, shortest-path/ECMP
//! FIBs, and deterministic rule-update streams. Rule-count relationships
//! the evaluation depends on are preserved (AT1-2 and AT2-2 share their
//! topologies with AT1-1/AT2-1 but carry several times the rules).
//!
//! Everything is seeded and reproducible.

pub mod examples;
pub mod gen;
pub mod topologies;

pub use examples::{fig2a_network, fig5a_network, fig6a_network};
pub use gen::{rule_updates, Dataset, DatasetSpec, NetKind, Scale, UpdateKind};

/// Names of the 13 evaluation datasets, in the paper's order.
pub const DATASET_NAMES: [&str; 13] = [
    "INet2", "B4-13", "STFD", "AT1-1", "AT1-2", "B4-18", "BTNA", "NTT", "AT2-1", "AT2-2", "OTEG",
    "FT-48", "NGDC",
];

/// Builds a dataset by its paper name.
pub fn by_name(name: &str, scale: Scale) -> Option<Dataset> {
    gen::build_dataset(name, scale)
}

/// Builds all 13 datasets at the given scale.
pub fn all_datasets(scale: Scale) -> Vec<Dataset> {
    DATASET_NAMES
        .iter()
        .map(|n| by_name(n, scale).expect("known dataset"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_resolve() {
        for name in DATASET_NAMES {
            let d = by_name(name, Scale::Tiny).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(d.spec.name, name);
            assert!(d.network.topology.num_devices() >= 5, "{name}");
            assert!(d.network.total_rules() > 0, "{name} has no rules");
        }
        assert!(by_name("NOPE", Scale::Tiny).is_none());
    }

    #[test]
    fn topologies_are_connected() {
        for name in DATASET_NAMES {
            let d = by_name(name, Scale::Tiny).unwrap();
            assert!(
                d.network.topology.connected_without(&[]),
                "{name} must be connected"
            );
        }
    }

    #[test]
    fn rule_multipliers_hold() {
        let a11 = by_name("AT1-1", Scale::Tiny).unwrap();
        let a12 = by_name("AT1-2", Scale::Tiny).unwrap();
        // Same topology...
        assert_eq!(
            a11.network.topology.num_devices(),
            a12.network.topology.num_devices()
        );
        assert_eq!(
            a11.network.topology.num_links(),
            a12.network.topology.num_links()
        );
        // ...but several times the rules (paper: 3.39×).
        let ratio = a12.network.total_rules() as f64 / a11.network.total_rules() as f64;
        assert!(ratio > 2.5 && ratio < 4.5, "AT1 ratio {ratio}");

        let a21 = by_name("AT2-1", Scale::Tiny).unwrap();
        let a22 = by_name("AT2-2", Scale::Tiny).unwrap();
        let ratio = a22.network.total_rules() as f64 / a21.network.total_rules() as f64;
        assert!(ratio > 8.0 && ratio < 16.0, "AT2 ratio {ratio}");
    }
}
