//! Dataset assembly: prefixes, FIBs, update streams.

use crate::topologies;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::routing::{self, RoutingOptions};
use tulkun_netmodel::topology::{DeviceId, Topology};
use tulkun_netmodel::IpPrefix;

/// Dataset category (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetKind {
    /// Wide-area network (millisecond links).
    Wan,
    /// Campus LAN (10 µs links).
    Lan,
    /// Data center fabric (10 µs links, ToR-only announcements).
    Dc,
}

/// Generation scale. `Tiny` keeps CI fast (fewer prefixes, smaller DC
/// fabrics); `Paper` approaches the paper's sizes. Ratios between
/// datasets are preserved at every scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly rule counts (default).
    Tiny,
    /// Rule counts approaching the paper's.
    Paper,
}

impl Scale {
    fn prefixes(self, per_device: usize) -> usize {
        match self {
            Scale::Tiny => per_device,
            Scale::Paper => per_device * 8,
        }
    }
}

/// Static facts about a dataset (printed by the Fig. 10 harness).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Paper name (e.g. `"INet2"`).
    pub name: String,
    /// WAN / LAN / DC.
    pub kind: NetKind,
    /// Device count.
    pub devices: usize,
    /// Link count.
    pub links: usize,
    /// Total FIB rules.
    pub rules: usize,
}

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Static facts (Fig. 10 row).
    pub spec: DatasetSpec,
    /// The generated snapshot.
    pub network: Network,
}

/// Assigns `per_device` external /24 prefixes to every device
/// (10.d.i.0/24-style, unique across the network).
pub fn assign_prefixes(topo: &mut Topology, per_device: usize) {
    for d in topo.devices().collect::<Vec<_>>() {
        for i in 0..per_device {
            let n = d.idx() * per_device + i;
            let prefix = IpPrefix::from_octets(
                [
                    10u8.wrapping_add((n >> 16) as u8),
                    (n >> 8) as u8,
                    n as u8,
                    0,
                ],
                24,
            );
            topo.add_external_prefix(d, prefix);
        }
    }
}

/// Assigns prefixes only to the listed devices (DC fabrics announce at
/// ToRs only).
pub fn assign_prefixes_at(topo: &mut Topology, devices: &[DeviceId], per_device: usize) {
    for (k, &d) in devices.iter().enumerate() {
        for i in 0..per_device {
            let n = k * per_device + i;
            let prefix = IpPrefix::from_octets(
                [
                    10u8.wrapping_add((n >> 16) as u8),
                    (n >> 8) as u8,
                    n as u8,
                    0,
                ],
                24,
            );
            topo.add_external_prefix(d, prefix);
        }
    }
}

/// Builds a network with shortest-path/ECMP FIBs for every external
/// prefix.
pub fn routed_network(topo: Topology) -> Network {
    let fibs = routing::generate_fibs(&topo, &RoutingOptions::default());
    let mut net = Network::new(topo);
    net.fibs = fibs;
    net
}

/// Builds one of the 13 datasets by its paper name.
pub fn build_dataset(name: &str, scale: Scale) -> Option<Dataset> {
    let (kind, mut topo, prefixes, tor_only) = match name {
        "INet2" => (
            NetKind::Wan,
            topologies::internet2(),
            scale.prefixes(4),
            false,
        ),
        "B4-13" => (NetKind::Wan, topologies::b4(13), scale.prefixes(3), false),
        "B4-18" => (NetKind::Wan, topologies::b4(18), scale.prefixes(3), false),
        "STFD" => (
            NetKind::Lan,
            topologies::stanford(),
            scale.prefixes(4),
            false,
        ),
        "AT1-1" => (
            NetKind::Wan,
            topologies::isp_like("at1", 25, 15, 0xA71),
            scale.prefixes(2),
            false,
        ),
        "AT1-2" => (
            NetKind::Wan,
            topologies::isp_like("at1", 25, 15, 0xA71),
            scale.prefixes(7),
            false,
        ),
        "BTNA" => (
            NetKind::Wan,
            topologies::isp_like("btna", 36, 40, 0xB7A),
            scale.prefixes(3),
            false,
        ),
        "NTT" => (
            NetKind::Wan,
            topologies::isp_like("ntt", 47, 170, 0x177),
            scale.prefixes(3),
            false,
        ),
        "AT2-1" => (
            NetKind::Wan,
            topologies::isp_like("at2", 108, 33, 0xA72),
            scale.prefixes(1),
            false,
        ),
        "AT2-2" => (
            NetKind::Wan,
            topologies::isp_like("at2", 108, 33, 0xA72),
            scale.prefixes(12),
            false,
        ),
        "OTEG" => (
            NetKind::Wan,
            topologies::isp_like("oteg", 93, 13, 0x07E),
            scale.prefixes(2),
            false,
        ),
        "FT-48" => {
            let k = match scale {
                Scale::Tiny => 8,
                Scale::Paper => 48,
            };
            (NetKind::Dc, topologies::fattree(k), 1, true)
        }
        "NGDC" => {
            let (pods, tors, aggs, spines) = match scale {
                Scale::Tiny => (6, 8, 4, 8),
                Scale::Paper => (32, 32, 8, 64),
            };
            (
                NetKind::Dc,
                topologies::clos_dc(pods, tors, aggs, spines),
                1,
                true,
            )
        }
        _ => return None,
    };
    if tor_only {
        let tors = topologies::tor_devices(&topo);
        assign_prefixes_at(&mut topo, &tors, prefixes);
    } else {
        assign_prefixes(&mut topo, prefixes);
    }
    let network = routed_network(topo);
    let spec = DatasetSpec {
        name: name.to_string(),
        kind,
        devices: network.topology.num_devices(),
        links: network.topology.num_links(),
        rules: network.total_rules(),
    };
    Some(Dataset { spec, network })
}

/// Adds `per_device` ACL-style rules (port-matching drops on announced
/// prefixes) to every device — the arbitrary-mix-of-headers data planes
/// that defeat purely prefix-based partitioning (the Libra limitation
/// the paper cites). Opt-in so Fig. 10's statistics stay comparable.
pub fn add_acls(net: &mut Network, per_device: usize, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let prefixes: Vec<IpPrefix> = net.topology.external_map().map(|(_, p)| p).collect();
    if prefixes.is_empty() {
        return;
    }
    for d in net.topology.devices().collect::<Vec<_>>() {
        for _ in 0..per_device {
            let p = prefixes[rng.gen_range(0..prefixes.len())];
            // Block a random high port on the prefix (priority above the
            // /24 routes, below injected errors).
            let port = rng.gen_range(1024..u16::MAX);
            net.fib_mut(d).insert(Rule {
                priority: 40,
                matches: MatchSpec::dst(p).with_port(port),
                action: Action::Drop,
            });
        }
    }
}

/// Kinds of generated rule updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Re-pin a route onto one member of its shortest-path set (the
    /// common benign churn: most updates leave end-to-end behaviour
    /// unchanged, which is why the paper sees most incremental
    /// verifications complete locally).
    EcmpReroute,
    /// Forward to a random neighbor (may create detours or loops).
    Detour,
    /// Insert a more-specific /26 drop (a creeping blackhole).
    SubprefixDrop,
    /// Remove a previously inserted high-priority rule.
    Retract,
}

/// Generates a deterministic stream of `n` rule updates against a
/// network (the incremental-verification workload of §9.2/§9.3.3).
/// Roughly: 55% benign ECMP re-pins, 15% detours, 20% sub-prefix drops,
/// 10% retractions of earlier inserts.
pub fn rule_updates(net: &Network, n: usize, seed: u64) -> Vec<RuleUpdate> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let topo = &net.topology;
    let mut out = Vec::with_capacity(n);
    let mut inserted: Vec<(DeviceId, u32, MatchSpec)> = Vec::new();
    let devices: Vec<DeviceId> = topo.devices().collect();
    // Destination device per announced prefix (for valid reroutes).
    let announced: Vec<(DeviceId, IpPrefix)> = topo.external_map().collect();
    while out.len() < n {
        let dev = devices[rng.gen_range(0..devices.len())];
        let fib = net.fib(dev);
        if fib.is_empty() {
            continue;
        }
        let rule = &fib.rules()[rng.gen_range(0..fib.len())];
        let kind = match rng.gen_range(0..100) {
            0..=54 => UpdateKind::EcmpReroute,
            55..=69 => UpdateKind::Detour,
            70..=89 => UpdateKind::SubprefixDrop,
            _ => UpdateKind::Retract,
        };
        match kind {
            UpdateKind::EcmpReroute => {
                // Re-pin onto a shortest-path next hop toward the
                // prefix's announcing device.
                let Some((dst, _)) = announced
                    .iter()
                    .find(|(_, p)| p.overlaps(&rule.matches.dst))
                else {
                    continue;
                };
                if *dst == dev {
                    continue;
                }
                let hops = routing::shortest_path_next_hops(topo, *dst, &[]);
                let choices = &hops[dev.idx()];
                if choices.is_empty() {
                    continue;
                }
                let nb = choices[rng.gen_range(0..choices.len())];
                let priority = 60 + (out.len() % 16) as u32;
                out.push(RuleUpdate::Insert {
                    device: dev,
                    rule: Rule {
                        priority,
                        matches: rule.matches,
                        action: Action::fwd(nb),
                    },
                });
                inserted.push((dev, priority, rule.matches));
            }
            UpdateKind::Detour => {
                let nbrs = topo.neighbors(dev);
                if nbrs.is_empty() {
                    continue;
                }
                let (nb, _) = nbrs[rng.gen_range(0..nbrs.len())];
                let priority = 60 + (out.len() % 16) as u32;
                out.push(RuleUpdate::Insert {
                    device: dev,
                    rule: Rule {
                        priority,
                        matches: rule.matches,
                        action: Action::fwd(nb),
                    },
                });
                inserted.push((dev, priority, rule.matches));
            }
            UpdateKind::SubprefixDrop => {
                if rule.matches.dst.len >= 26 {
                    continue;
                }
                let (lo, hi) = rule.matches.dst.split();
                let sub = if rng.gen_bool(0.5) { lo } else { hi };
                let m = MatchSpec::dst(sub);
                out.push(RuleUpdate::Insert {
                    device: dev,
                    rule: Rule {
                        priority: 90,
                        matches: m,
                        action: Action::Drop,
                    },
                });
                inserted.push((dev, 90, m));
            }
            UpdateKind::Retract => {
                if inserted.is_empty() {
                    continue;
                }
                let (d, p, m) = inserted.swap_remove(rng.gen_range(0..inserted.len()));
                out.push(RuleUpdate::Remove {
                    device: d,
                    priority: p,
                    matches: m,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_are_unique() {
        let mut t = topologies::internet2();
        assign_prefixes(&mut t, 3);
        let mut all: Vec<IpPrefix> = t.external_map().map(|(_, p)| p).collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate external prefixes");
        assert_eq!(n, 9 * 3);
    }

    #[test]
    fn routed_network_has_full_reachability_rules() {
        let mut t = topologies::internet2();
        assign_prefixes(&mut t, 1);
        let net = routed_network(t);
        // Every device holds a rule for every prefix (9 prefixes × 9
        // devices).
        assert_eq!(net.total_rules(), 81);
    }

    #[test]
    fn updates_are_deterministic() {
        let d = build_dataset("INet2", Scale::Tiny).unwrap();
        let a = rule_updates(&d.network, 50, 7);
        let b = rule_updates(&d.network, 50, 7);
        assert_eq!(a, b);
        let c = rule_updates(&d.network, 50, 8);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn updates_apply_cleanly() {
        let d = build_dataset("B4-13", Scale::Tiny).unwrap();
        let mut net = d.network.clone();
        for u in rule_updates(&net, 100, 1) {
            net.apply(&u);
        }
        assert!(net.total_rules() >= d.network.total_rules());
    }

    #[test]
    fn acls_add_port_rules() {
        let d = build_dataset("INet2", Scale::Tiny).unwrap();
        let mut net = d.network.clone();
        let before = net.total_rules();
        add_acls(&mut net, 3, 9);
        assert_eq!(net.total_rules(), before + 3 * 9);
        // Rules carry port constraints.
        let has_port = net
            .fibs
            .iter()
            .flat_map(|f| f.rules())
            .any(|r| r.matches.dst_port.is_some());
        assert!(has_port);
        // Deterministic.
        let mut net2 = d.network.clone();
        add_acls(&mut net2, 3, 9);
        assert_eq!(net.fibs, net2.fibs);
    }

    #[test]
    fn dc_datasets_announce_at_tors_only() {
        let d = build_dataset("FT-48", Scale::Tiny).unwrap();
        for (dev, _) in d.network.topology.external_map() {
            assert!(d.network.topology.name(dev).starts_with("tor"));
        }
    }
}
