//! Topology builders: the public WAN/LAN topologies the paper uses and
//! synthetic ISP/DC topologies reproducing the published sizes.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tulkun_netmodel::topology::{DeviceId, Topology};

const MS: u64 = 1_000_000;
const US: u64 = 1_000;

/// The 9-device Internet2 (Abilene-era) WAN with geography-based link
/// latencies.
pub fn internet2() -> Topology {
    let mut t = Topology::new();
    let names = [
        "SEAT", "LOSA", "SALT", "HOUS", "KANS", "CHIC", "ATLA", "WASH", "NEWY",
    ];
    let ids: Vec<DeviceId> = names.iter().map(|n| t.add_device(*n)).collect();
    let d = |n: &str| ids[names.iter().position(|x| *x == n).unwrap().to_owned()];
    let links: [(&str, &str, u64); 12] = [
        ("SEAT", "SALT", 14 * MS),
        ("SEAT", "LOSA", 18 * MS),
        ("LOSA", "SALT", 12 * MS),
        ("LOSA", "HOUS", 22 * MS),
        ("SALT", "KANS", 15 * MS),
        ("HOUS", "KANS", 12 * MS),
        ("HOUS", "ATLA", 14 * MS),
        ("KANS", "CHIC", 9 * MS),
        ("CHIC", "ATLA", 11 * MS),
        ("CHIC", "NEWY", 13 * MS),
        ("ATLA", "WASH", 10 * MS),
        ("WASH", "NEWY", 4 * MS),
    ];
    for (a, b, lat) in links {
        t.add_link(d(a), d(b), lat);
    }
    t
}

/// Google B4 as of 2013: 13 sites (B4-13) or the later 18-site
/// expansion (B4-18), with WAN-scale latencies.
pub fn b4(sites: usize) -> Topology {
    assert!(sites == 13 || sites == 18, "B4 has 13 or 18 sites");
    let mut t = Topology::new();
    let ids: Vec<DeviceId> = (0..sites)
        .map(|i| t.add_device(format!("b4-{i:02}")))
        .collect();
    // Base 13-site mesh-ish backbone (19 links), then the 18-site
    // expansion adds 5 sites with dual-homing.
    let base: [(usize, usize, u64); 19] = [
        (0, 1, 8 * MS),
        (0, 2, 12 * MS),
        (1, 2, 6 * MS),
        (1, 3, 25 * MS),
        (2, 4, 28 * MS),
        (3, 4, 9 * MS),
        (3, 5, 14 * MS),
        (4, 6, 11 * MS),
        (5, 6, 7 * MS),
        (5, 7, 30 * MS),
        (6, 8, 26 * MS),
        (7, 8, 10 * MS),
        (7, 9, 13 * MS),
        (8, 10, 12 * MS),
        (9, 10, 8 * MS),
        (9, 11, 20 * MS),
        (10, 12, 18 * MS),
        (11, 12, 6 * MS),
        (2, 3, 16 * MS),
    ];
    for (a, b, lat) in base {
        t.add_link(ids[a], ids[b], lat);
    }
    if sites == 18 {
        let ext: [(usize, usize, u64); 10] = [
            (13, 0, 9 * MS),
            (13, 2, 11 * MS),
            (14, 3, 8 * MS),
            (14, 5, 12 * MS),
            (15, 6, 10 * MS),
            (15, 8, 14 * MS),
            (16, 9, 7 * MS),
            (16, 11, 9 * MS),
            (17, 10, 13 * MS),
            (17, 12, 8 * MS),
        ];
        for (a, b, lat) in ext {
            t.add_link(ids[a], ids[b], lat);
        }
    }
    t
}

/// A Stanford-backbone-like campus LAN: 2 core routers and 14 zone
/// routers, each zone dual-homed to both cores (10 µs links).
pub fn stanford() -> Topology {
    let mut t = Topology::new();
    let core_a = t.add_device("bbra");
    let core_b = t.add_device("bbrb");
    t.add_link(core_a, core_b, 10 * US);
    for i in 0..14 {
        let z = t.add_device(format!("zone{i:02}"));
        t.add_link(z, core_a, 10 * US);
        t.add_link(z, core_b, 10 * US);
    }
    t
}

/// A synthetic ISP backbone in the style of Rocketfuel-measured
/// topologies: a random connected graph grown by preferential
/// attachment with extra shortcut links, deterministic in `seed`.
pub fn isp_like(name: &str, devices: usize, extra_links: usize, seed: u64) -> Topology {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = Topology::new();
    let ids: Vec<DeviceId> = (0..devices)
        .map(|i| t.add_device(format!("{name}-{i:03}")))
        .collect();
    // Spanning tree by preferential attachment.
    let mut degree = vec![0usize; devices];
    for i in 1..devices {
        // Pick an existing node weighted by degree+1.
        let total: usize = degree[..i].iter().map(|d| d + 1).sum();
        let mut pick = rng.gen_range(0..total);
        let mut j = 0;
        while pick > degree[j] {
            pick -= degree[j] + 1;
            j += 1;
        }
        let lat = rng.gen_range(2..30) * MS;
        t.add_link(ids[i], ids[j], lat);
        degree[i] += 1;
        degree[j] += 1;
    }
    // Extra shortcuts.
    let mut added = 0;
    let mut guard = 0;
    while added < extra_links && guard < extra_links * 50 {
        guard += 1;
        let a = rng.gen_range(0..devices);
        let b = rng.gen_range(0..devices);
        if a == b || t.link_between(ids[a], ids[b]).is_some() {
            continue;
        }
        let lat = rng.gen_range(2..30) * MS;
        t.add_link(ids[a], ids[b], lat);
        added += 1;
    }
    t
}

/// A `k`-ary fat tree (Al-Fares et al.): `k` pods of `k/2` edge (ToR)
/// and `k/2` aggregation switches plus `(k/2)²` core switches; 10 µs
/// links. `k` must be even.
pub fn fattree(k: usize) -> Topology {
    assert!(k >= 2 && k.is_multiple_of(2), "fat tree arity must be even");
    let half = k / 2;
    let mut t = Topology::new();
    // Core switches: (k/2)².
    let cores: Vec<DeviceId> = (0..half * half)
        .map(|i| t.add_device(format!("core{i:04}")))
        .collect();
    for pod in 0..k {
        let aggs: Vec<DeviceId> = (0..half)
            .map(|i| t.add_device(format!("agg{pod:02}x{i:02}")))
            .collect();
        let edges: Vec<DeviceId> = (0..half)
            .map(|i| t.add_device(format!("tor{pod:02}x{i:02}")))
            .collect();
        for (ai, &a) in aggs.iter().enumerate() {
            for &e in &edges {
                t.add_link(a, e, 10 * US);
            }
            // Aggregation switch ai connects to cores [ai*half, (ai+1)*half).
            for c in 0..half {
                t.add_link(a, cores[ai * half + c], 10 * US);
            }
        }
    }
    t
}

/// A Clos-based data center in the style of the paper's NGDC: `pods`
/// pods of `tors_per_pod` ToRs and `aggs_per_pod` aggregation switches,
/// with a `spines` spine layer.
pub fn clos_dc(pods: usize, tors_per_pod: usize, aggs_per_pod: usize, spines: usize) -> Topology {
    let mut t = Topology::new();
    let spine: Vec<DeviceId> = (0..spines)
        .map(|i| t.add_device(format!("spine{i:04}")))
        .collect();
    for p in 0..pods {
        let aggs: Vec<DeviceId> = (0..aggs_per_pod)
            .map(|i| t.add_device(format!("agg{p:03}x{i:02}")))
            .collect();
        for tor in 0..tors_per_pod {
            let tor = t.add_device(format!("tor{p:03}x{tor:02}"));
            for &a in &aggs {
                t.add_link(tor, a, 10 * US);
            }
        }
        // Each aggregation switch connects to an even stripe of spines.
        for (ai, &a) in aggs.iter().enumerate() {
            for s in 0..spines / aggs_per_pod {
                t.add_link(a, spine[ai * (spines / aggs_per_pod) + s], 10 * US);
            }
        }
    }
    t
}

/// ToR device ids of a fat tree or Clos topology (devices named `tor…`).
pub fn tor_devices(t: &Topology) -> Vec<DeviceId> {
    t.devices()
        .filter(|d| t.name(*d).starts_with("tor"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internet2_shape() {
        let t = internet2();
        assert_eq!(t.num_devices(), 9);
        assert_eq!(t.num_links(), 12);
        assert!(t.connected_without(&[]));
        assert!(t.diameter_hops() <= 4);
    }

    #[test]
    fn b4_shapes() {
        let t13 = b4(13);
        assert_eq!(t13.num_devices(), 13);
        assert_eq!(t13.num_links(), 19);
        assert!(t13.connected_without(&[]));
        let t18 = b4(18);
        assert_eq!(t18.num_devices(), 18);
        assert_eq!(t18.num_links(), 29);
        assert!(t18.connected_without(&[]));
    }

    #[test]
    fn stanford_shape() {
        let t = stanford();
        assert_eq!(t.num_devices(), 16);
        assert_eq!(t.num_links(), 29);
        assert_eq!(t.diameter_hops(), 2);
    }

    #[test]
    fn isp_like_is_deterministic_and_connected() {
        let a = isp_like("at1", 25, 15, 42);
        let b = isp_like("at1", 25, 15, 42);
        assert_eq!(a.num_links(), b.num_links());
        assert_eq!(a.num_devices(), 25);
        assert!(a.connected_without(&[]));
        let c = isp_like("at1", 25, 15, 43);
        // Different seed, (almost surely) different wiring: compare edge
        // sets via sorted endpoints.
        let edges = |t: &Topology| {
            let mut v: Vec<(u32, u32)> = t
                .links()
                .iter()
                .map(|l| (l.a.0.min(l.b.0), l.a.0.max(l.b.0)))
                .collect();
            v.sort();
            v
        };
        assert_ne!(edges(&a), edges(&c));
    }

    #[test]
    fn fattree_shape() {
        let t = fattree(4);
        // k=4: 4 cores + 4 pods × (2 agg + 2 tor) = 20.
        assert_eq!(t.num_devices(), 20);
        assert!(t.connected_without(&[]));
        assert_eq!(tor_devices(&t).len(), 8);
        // Fat tree diameter: tor→agg→core→agg→tor = 4.
        assert_eq!(t.diameter_hops(), 4);

        let t48 = fattree(48);
        assert_eq!(t48.num_devices(), 24 * 24 + 48 * 48); // 576 cores + 2304 pod switches
        assert_eq!(tor_devices(&t48).len(), 48 * 24);
    }

    #[test]
    fn clos_shape() {
        let t = clos_dc(8, 12, 4, 16);
        assert_eq!(t.num_devices(), 16 + 8 * (12 + 4));
        assert!(t.connected_without(&[]));
        assert_eq!(tor_devices(&t).len(), 96);
    }
}
