//! RCDC-style data center verification: the `equal` operator turns
//! all-ToR-pair shortest-path availability into communication-free local
//! contracts — every switch checks only its own FIB, in parallel
//! (the special case of Tulkun that §4.2 proves needs no counting at
//! all).
//!
//! ```sh
//! cargo run --example datacenter_rcdc
//! ```

use tulkun::core::localcheck::LocalChecker;
use tulkun::core::planner::LocalContract;
use tulkun::core::verify::compile_packet_space;
use tulkun::netmodel::fib::MatchSpec;
use tulkun::netmodel::network::RuleUpdate;
use tulkun::prelude::*;

fn main() {
    // An 8-ary fat tree: 80 switches, ECMP everywhere.
    let ds = tulkun::datasets::by_name("FT-48", tulkun::datasets::Scale::Tiny).unwrap();
    let net = &ds.network;
    println!("fabric: {}", net.topology);

    // Pick one destination ToR; the invariant covers every other ToR as
    // ingress.
    let (dst, prefix) = net.topology.external_map().next().unwrap();
    let dst_name = net.topology.name(dst).to_string();
    let ingress: Vec<String> = net
        .topology
        .devices()
        .filter(|d| *d != dst && net.topology.name(*d).starts_with("tor"))
        .map(|d| net.topology.name(d).to_string())
        .collect();
    let inv = Invariant::builder()
        .name(format!("all-shortest-path availability -> {dst_name}"))
        .packet_space(PacketSpace::DstPrefix(prefix))
        .ingress(ingress)
        .behavior(Behavior::equal(
            PathExpr::parse(&format!(". * {dst_name}"))
                .unwrap()
                .shortest_only(),
        ))
        .build()
        .unwrap();

    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let lp = plan
        .local()
        .expect("equal behaviors compile to local contracts");
    println!(
        "local plan: {} contracts over the {}-node shortest-path DAG — zero DVM messages",
        lp.contracts.len(),
        lp.dpvnet.num_nodes()
    );

    // Run every device's check.
    let psp = compile_packet_space(&net.layout, &inv.packet_space);
    let mut violations = 0;
    for dev in net.topology.devices() {
        let contracts: Vec<LocalContract> = lp
            .contracts
            .iter()
            .filter(|c| c.dev == dev)
            .cloned()
            .collect();
        if contracts.is_empty() {
            continue;
        }
        let mut checker = LocalChecker::new(dev, net.layout, net.fib(dev).clone(), contracts, &psp);
        violations += checker.check().len();
    }
    println!("clean fabric: {violations} violations");
    assert_eq!(violations, 0);

    // Break one aggregation switch's ECMP group (drop the prefix) and
    // re-check just that switch — the contract catches it locally.
    let agg = net
        .topology
        .devices()
        .find(|d| net.topology.name(*d).starts_with("agg"))
        .unwrap();
    let mut broken = net.clone();
    broken.apply(&RuleUpdate::Insert {
        device: agg,
        rule: Rule {
            priority: 99,
            matches: MatchSpec::dst(prefix),
            action: Action::Drop,
        },
    });
    let contracts: Vec<LocalContract> = lp
        .contracts
        .iter()
        .filter(|c| c.dev == agg)
        .cloned()
        .collect();
    let mut checker =
        LocalChecker::new(agg, broken.layout, broken.fib(agg).clone(), contracts, &psp);
    let found = checker.check();
    println!(
        "after breaking {}: {} violation(s) found locally, e.g. {:?}",
        broken.topology.name(agg),
        found.len(),
        found.first().map(|v| v.reason.clone())
    );
    assert!(!found.is_empty());
}
