//! Distributed deployment shape: every on-device verifier runs on its
//! own OS thread, connected by in-order channels — the same topology of
//! verification agents the paper's prototype runs over TCP between
//! switches.
//!
//! ```sh
//! cargo run --example distributed_threaded
//! ```

use tulkun::core::planner::Planner;
use tulkun::prelude::*;
use tulkun::sim::distributed::DistributedRun;

fn main() {
    let net = tulkun::datasets::fig2a_network();
    let invariant =
        Invariant::parse("(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))")
            .unwrap();
    let plan = Planner::new(&net.topology).plan(&invariant).unwrap();
    let cp = plan.counting().unwrap();

    println!(
        "spawning {} device verifiers as threads ({} DPVNet nodes)",
        net.topology.num_devices(),
        cp.dpvnet.num_nodes()
    );
    let run = DistributedRun::spawn(&net, cp, &invariant.packet_space);
    run.quiesce();
    let report = run.report();
    println!("burst verdict: holds = {}", report.holds());
    assert!(!report.holds());

    // Stream the Fig. 2 repair update into device B, live.
    let b = net.topology.expect_device("B");
    let w = net.topology.expect_device("W");
    run.inject_update(tulkun::netmodel::network::RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 50,
            matches: tulkun::netmodel::fib::MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
            action: Action::fwd(w),
        },
    });
    run.quiesce();
    let report = run.report();
    println!("after live update: holds = {}", report.holds());
    assert!(report.holds());

    let stats = run.shutdown().expect("clean shutdown");
    println!(
        "all verifier threads joined cleanly ({} messages, {} bytes on the wire)",
        stats.messages, stats.bytes
    );
}
