//! The five functionality demos of §9.1, each run against a correct and
//! an erroneous data plane of the Figure 2a network:
//!
//! 1. loop-free waypoint reachability S → D,
//! 2. loop-free multicast from S to W and D,
//! 3. loop-free anycast from S to B and D,
//! 4. different-ingress consistent reachability from S and B to D,
//! 5. all-shortest-path availability from S to D (RCDC-style).
//!
//! ```sh
//! cargo run --example demos
//! ```

use tulkun::core::spec::table1;
use tulkun::core::verify::verify_snapshot;
use tulkun::netmodel::fib::MatchSpec;
use tulkun::netmodel::network::RuleUpdate;
use tulkun::prelude::*;

fn check(name: &str, net: &Network, inv: &Invariant, expect_holds: bool) {
    let planner = Planner::with_options(
        &net.topology,
        tulkun::core::planner::PlannerOptions {
            skip_consistency_check: true,
            ..Default::default()
        },
    );
    let plan = planner.plan(inv).unwrap();
    let report = verify_snapshot(net, &plan);
    let verdict = if report.holds() { "holds" } else { "VIOLATED" };
    println!(
        "  {name}: {verdict} ({} violation classes)",
        report.violations.len()
    );
    assert_eq!(report.holds(), expect_holds, "{name}");
}

fn main() {
    let ps = || PacketSpace::dst_prefix("10.0.0.0/23");
    // A *correct* data plane for all five demos: replace B's drop and
    // A's port-80 ECMP so everything flows S → A → W → D.
    let correct = {
        let mut net = tulkun::datasets::fig2a_network();
        let a = net.topology.expect_device("A");
        let b = net.topology.expect_device("B");
        let w = net.topology.expect_device("W");
        let d = net.topology.expect_device("D");
        // A sends everything to W; B forwards to D (unused but clean).
        net.apply(&RuleUpdate::Insert {
            device: a,
            rule: Rule {
                priority: 99,
                matches: MatchSpec::dst("10.0.0.0/23".parse().unwrap()),
                action: Action::fwd(w),
            },
        });
        net.apply(&RuleUpdate::Insert {
            device: b,
            rule: Rule {
                priority: 99,
                matches: MatchSpec::dst("10.0.0.0/23".parse().unwrap()),
                action: Action::fwd(d),
            },
        });
        net
    };
    // The erroneous plane is Fig. 2a's original (B drops P2; A's ANY
    // group lets P3 skip W).
    let erroneous = tulkun::datasets::fig2a_network();

    println!("demo 1: loop-free waypoint reachability S -> W -> D");
    let wp = table1::waypoint(ps(), "S", "W", "D").unwrap();
    check("correct plane", &correct, &wp, true);
    check("erroneous plane", &erroneous, &wp, false);

    println!("demo 2: loop-free multicast S -> {{W, D}}");
    let mc = table1::multicast(ps(), "S", &["W", "D"]).unwrap();
    check("correct plane", &correct, &mc, true);
    check("erroneous plane", &erroneous, &mc, false);

    println!("demo 3: loop-free anycast S -> B xor D");
    // On the correct plane everything reaches D and nothing terminates
    // at B — exactly one of the two, so anycast holds.
    let ac = table1::anycast(ps(), "S", "B", "D").unwrap();
    check("correct plane", &correct, &ac, true);
    // On the erroneous plane P2 reaches neither B-terminal nor... it
    // reaches D once; but P3's B-universe ends at D too — still one.
    // The interesting failure: replicate to both B and D.
    let mut both = correct.clone();
    let a = both.topology.expect_device("A");
    let b = both.topology.expect_device("B");
    let w = both.topology.expect_device("W");
    both.apply(&RuleUpdate::Insert {
        device: a,
        rule: Rule {
            priority: 100,
            matches: MatchSpec::dst("10.0.0.0/23".parse().unwrap()),
            action: Action::fwd_all([b, w]),
        },
    });
    // Make B deliver locally (terminate) so both B and D receive copies.
    both.apply(&RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 100,
            matches: MatchSpec::dst("10.0.0.0/23".parse().unwrap()),
            action: Action::deliver(),
        },
    });
    check("replicating plane", &both, &ac, false);

    println!("demo 4: different-ingress consistent reachability {{S, B}} -> D");
    let di = table1::different_ingress_reachability(ps(), &["S", "B"], "D").unwrap();
    check("correct plane", &correct, &di, true);
    check("erroneous plane", &erroneous, &di, false);

    println!("demo 5: all-shortest-path availability S -> D (local contracts)");
    let asp = table1::all_shortest_path(ps(), "S", "D").unwrap();
    // The ECMP-complete plane: A must use BOTH B and W (the two
    // shortest S→D paths run through them).
    let mut ecmp = tulkun::datasets::fig2a_network();
    let bdev = ecmp.topology.expect_device("B");
    let d = ecmp.topology.expect_device("D");
    ecmp.apply(&RuleUpdate::Insert {
        device: a_of(&ecmp),
        rule: Rule {
            priority: 99,
            matches: MatchSpec::dst("10.0.0.0/23".parse().unwrap()),
            action: Action::fwd_any([bdev, ecmp.topology.expect_device("W")]),
        },
    });
    ecmp.apply(&RuleUpdate::Insert {
        device: bdev,
        rule: Rule {
            priority: 99,
            matches: MatchSpec::dst("10.0.0.0/23".parse().unwrap()),
            action: Action::fwd(d),
        },
    });
    check("ECMP-complete plane", &ecmp, &asp, true);
    check("single-path plane", &correct, &asp, false);

    println!("all demos behaved as expected");
}

fn a_of(net: &Network) -> tulkun::netmodel::DeviceId {
    net.topology.expect_device("A")
}
