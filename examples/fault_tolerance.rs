//! Fault-tolerant verification (§6): precompute a fault-tolerant DPVNet
//! for 2-link-failure reachability, fail links, and watch the on-device
//! verifiers recount without contacting the planner.
//!
//! ```sh
//! cargo run --example fault_tolerance
//! ```

use tulkun::core::fault::{plan_fault_tolerant, FaultScene};
use tulkun::core::spec::FaultSpec;
use tulkun::prelude::*;
use tulkun::sim::{DvmSim, SimConfig};

fn main() {
    let net = tulkun::datasets::fig2a_network();
    let topo = &net.topology;

    // (<= shortest+1) reachability S → D that must survive any two link
    // failures — the invariant of the paper's Figure 8.
    let inv = Invariant::builder()
        .name("2-fault-tolerant reachability")
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S .* D")
                .unwrap()
                .loop_free()
                .shortest_plus(1),
        ))
        .fault_scenes(FaultSpec::AnyK(2))
        .build()
        .unwrap();

    let (plan, ft) = plan_fault_tolerant(topo, &inv, 10_000, 100_000).unwrap();
    println!(
        "fault-tolerant DPVNet: {} nodes, {} scenes ({} reused via Prop. 2), {} intolerable",
        ft.dpvnet.num_nodes(),
        ft.scenes.len(),
        ft.reused_scenes,
        ft.intolerable.len()
    );
    for &i in &ft.intolerable {
        let names: Vec<String> = ft.scenes[i]
            .0
            .iter()
            .map(|(a, b)| format!("{}–{}", topo.name(*a), topo.name(*b)))
            .collect();
        println!("  intolerable scene: {{{}}}", names.join(", "));
    }

    // Burst-verify the base scene.
    let mut sim = DvmSim::new(&net, &plan, &inv.packet_space, SimConfig::default());
    sim.burst();
    println!("scene 0 (no failures): holds = {}", sim.report().holds());
    assert!(sim.report().holds());

    // Fail link B–D: verifiers flood the event, switch to the scene's
    // task view, and recount — with no planner involvement. The FIBs
    // have NOT been repaired yet, so the copies B used to push over the
    // dead link are lost and the verifiers catch it instantly.
    let b = topo.expect_device("B");
    let w = topo.expect_device("W");
    let scene = FaultScene::new([(b, topo.expect_device("D"))]);
    let idx = ft.scene_index(&scene).expect("pre-specified scene");
    let r = sim.apply_scene(&ft.scene_tasks(idx), 10_000);
    println!(
        "scene {{B–D}}, routes not yet repaired: recounted in {} messages, holds = {}",
        r.messages,
        sim.report().holds()
    );
    assert!(
        !sim.report().holds(),
        "B still forwards into the dead link; the recount must flag it"
    );

    // The control plane repairs B's route (B → W instead of B → D); the
    // verifiers re-verify the repair incrementally.
    let repair = tulkun::netmodel::network::RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 120,
            matches: tulkun::netmodel::fib::MatchSpec::dst("10.0.0.0/23".parse().unwrap()),
            action: Action::fwd(w),
        },
    };
    sim.incremental(&repair);
    println!(
        "after the control plane reroutes B via W: holds = {}",
        sim.report().holds()
    );
    assert!(sim.report().holds());

    // An unspecified 3-link scene is reported to the planner.
    let s = topo.expect_device("S");
    let a = topo.expect_device("A");
    let d = topo.expect_device("D");
    let wild = FaultScene::new([(b, d), (w, d), (s, a)]);
    assert!(ft.scene_index(&wild).is_none());
    println!("unspecified 3-link scene correctly routed to the planner");
}
