//! Quickstart: verify the paper's running example (Figure 2) end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the 5-device network of Fig. 2a, specifies the waypoint
//! invariant of Fig. 2b, plans it into a DPVNet, runs the distributed
//! counting to quiescence, prints the verdict, then applies the
//! incremental rule update of §2.2.3 and shows the violation disappear.

use tulkun::core::verify::Session;
use tulkun::prelude::*;

fn main() {
    // The example network and data plane of Fig. 2a.
    let net = tulkun::datasets::fig2a_network();
    println!("network: {}", net.topology);

    // Fig. 2b: packets to 10.0.0.0/23 entering at S must reach D via a
    // simple path through the waypoint W — in every universe.
    let invariant = Invariant::builder()
        .name("fig2b waypoint")
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S .* W .* D").unwrap().loop_free(),
        ))
        .build()
        .unwrap();

    // The same invariant in the textual surface syntax:
    let textual =
        Invariant::parse("(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))")
            .unwrap();
    assert_eq!(textual.behavior, invariant.behavior);

    // Plan: invariant × topology → DPVNet → per-device counting tasks.
    let plan = Planner::new(&net.topology).plan(&invariant).unwrap();
    let cp = plan.counting().unwrap();
    println!(
        "DPVNet: {} nodes, {} valid paths, {} on-device tasks",
        cp.dpvnet.num_nodes(),
        cp.dpvnet.num_paths(),
        cp.tasks.len()
    );
    println!("{}", cp.dpvnet.to_dot(&net.topology));

    // Run the on-device verifiers to quiescence.
    let mut session = Session::new(&net, &plan);
    let messages = session.run_to_quiescence();
    let report = session.report();
    println!("burst: {messages} DVM messages, holds = {}", report.holds());
    for v in &report.violations {
        println!(
            "  violation at {} ({}): counts {:?}",
            net.topology.name(v.device),
            cp.dpvnet.node(v.node).label,
            v.kind
        );
    }
    assert!(
        !report.holds(),
        "Fig. 2a violates the waypoint invariant (P3 may skip W)"
    );

    // §2.2.3: B reroutes 10.0.1.0/24 toward W. The network re-verifies
    // incrementally — only affected devices recount.
    let b = net.topology.expect_device("B");
    let w = net.topology.expect_device("W");
    let update = tulkun::netmodel::network::RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 50,
            matches: tulkun::netmodel::fib::MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
            action: Action::fwd(w),
        },
    };
    let incr_messages = session.apply_rule_update(&update);
    let report = session.report();
    println!(
        "after update: {incr_messages} DVM messages, holds = {}",
        report.holds()
    );
    assert!(report.holds());
    println!("ok: the violation is repaired and verified distributively");
}
