//! Why backward propagation? (§7 "Why not forward propagation?")
//!
//! Because counting results flow *from the destination toward sources*,
//! every device ends up knowing, for each packet class, how many copies
//! IT can still deliver — not just the ingress. That is exactly the
//! information routing services need: §1 cites convergence-free routing
//! and fast data-plane switching as consumers.
//!
//! This example shows a transit device using its neighbors' DVM results
//! to make a *local* reroute decision when its primary next hop stops
//! delivering — no controller, no global recomputation.
//!
//! ```sh
//! cargo run --example local_reroute
//! ```

use tulkun::core::verify::Session;
use tulkun::netmodel::fib::MatchSpec;
use tulkun::netmodel::network::RuleUpdate;
use tulkun::prelude::*;

fn main() {
    // Diamond: S → A → {B | W} → D. A routes via B; B will blackhole.
    let mut t = Topology::new();
    let s = t.add_device("S");
    let a = t.add_device("A");
    let b = t.add_device("B");
    let w = t.add_device("W");
    let d = t.add_device("D");
    t.add_link(s, a, 1000);
    t.add_link(a, b, 1000);
    t.add_link(a, w, 1000);
    t.add_link(b, d, 1000);
    t.add_link(w, d, 1000);
    let prefix: tulkun::netmodel::IpPrefix = "10.0.0.0/24".parse().unwrap();
    t.add_external_prefix(d, prefix);

    let mut net = Network::new(t);
    net.fib_mut(s).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(prefix),
        action: Action::fwd(a),
    });
    net.fib_mut(a).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(prefix),
        action: Action::fwd(b),
    });
    net.fib_mut(b).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(prefix),
        action: Action::fwd(d),
    });
    net.fib_mut(w).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(prefix),
        action: Action::fwd(d),
    });
    net.fib_mut(d).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(prefix),
        action: Action::deliver(),
    });

    let inv = Invariant::builder()
        .name("S reaches D")
        .packet_space(PacketSpace::DstPrefix(prefix))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S .* D").unwrap().loop_free(),
        ))
        .build()
        .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let cp = plan.counting().unwrap();
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();
    assert!(session.report().holds());

    // A's own view: counts from each of its DPVNet neighbors.
    let show_counts = |session: &mut Session, dev, label: &str| {
        let v = session.verifier_mut(dev).unwrap();
        for node in v.node_ids() {
            for (_, counts) in v.node_result(node, None) {
                println!(
                    "  {label} ({}): deliverable copies {counts}",
                    cp.dpvnet.node(node).label
                );
            }
        }
    };
    println!("before the failure:");
    show_counts(&mut session, a, "A");
    show_counts(&mut session, b, "B");
    show_counts(&mut session, w, "W");

    // B blackholes the prefix. DVM pushes B's count drop to A within one
    // message — A now *locally* knows its primary path is dead while W
    // still delivers.
    session.apply_rule_update(&RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 99,
            matches: MatchSpec::dst(prefix),
            action: Action::Drop,
        },
    });
    println!(
        "\nafter B blackholes (invariant holds = {}):",
        session.report().holds()
    );
    show_counts(&mut session, a, "A");
    show_counts(&mut session, b, "B");
    show_counts(&mut session, w, "W");
    assert!(!session.report().holds());

    // The local routing service on A reads its neighbors' counts and
    // re-pins to the neighbor that still delivers — W.
    let b_count: Vec<_> = {
        let v = session.verifier_mut(b).unwrap();
        let nodes = v.node_ids();
        nodes
            .iter()
            .flat_map(|n| v.node_result(*n, None))
            .map(|(_, c)| c)
            .collect()
    };
    assert!(b_count.iter().all(|c| c.is_zero()), "B no longer delivers");
    println!("\nA re-pins its route to W (local decision, no controller):");
    session.apply_rule_update(&RuleUpdate::Insert {
        device: a,
        rule: Rule {
            priority: 99,
            matches: MatchSpec::dst(prefix),
            action: Action::fwd(w),
        },
    });
    println!("invariant holds = {}", session.report().holds());
    assert!(session.report().holds());
}
