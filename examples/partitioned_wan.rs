//! Divide-and-conquer verification (§7): partition a WAN into regions,
//! abstract each region as one big switch, and verify reachability
//! hierarchically — each partition is an independent verification
//! domain (also the paper's incremental-deployment story: one off-device
//! instance per partition).
//!
//! ```sh
//! cargo run --example partitioned_wan
//! ```

use tulkun::core::partition::{plan_hierarchical, verify_hierarchical, Partitioning};
use tulkun::netmodel::fib::MatchSpec;
use tulkun::netmodel::network::RuleUpdate;
use tulkun::prelude::*;

fn main() {
    let ds = tulkun::datasets::by_name("OTEG", tulkun::datasets::Scale::Tiny).unwrap();
    let net = ds.network;
    let topo = &net.topology;
    println!("network: {topo}");

    // Partition into 4 connected regions.
    let partitioning = Partitioning::by_regions(topo, 4);
    for g in 0..partitioning.len() {
        println!("  region {g}: {} devices", partitioning.group(g).len());
    }

    // One reachability invariant across regions.
    let (dst, prefix) = topo.external_map().next().unwrap();
    let src = topo
        .devices()
        .max_by_key(|d| topo.bfs_hops(dst, &[])[d.idx()])
        .unwrap();
    let inv = Invariant::builder()
        .name(format!("{} -> {}", topo.name(src), topo.name(dst)))
        .packet_space(PacketSpace::DstPrefix(prefix))
        .ingress([topo.name(src)])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse(&format!("{} .* {}", topo.name(src), topo.name(dst)))
                .unwrap()
                .loop_free(),
        ))
        .build()
        .unwrap();

    let hp = plan_hierarchical(&net, &inv, partitioning).unwrap();
    println!(
        "hierarchical plan: {} abstract edges ({} -> {}), {} intra-partition sessions",
        hp.abstract_edges.len(),
        hp.src_group,
        hp.dst_group,
        hp.tasks.len()
    );
    let report = verify_hierarchical(&hp);
    println!("clean network: holds = {}", report.holds);
    assert!(report.holds);

    // Blackhole the prefix inside the destination's region: the failing
    // intra task pinpoints the region and entry border.
    let mut broken = net.clone();
    let victim = broken
        .topology
        .devices()
        .find(|d| {
            *d != dst
                && hp.partitioning.group_of(*d) == hp.dst_group
                && broken.topology.bfs_hops(dst, &[])[d.idx()] == 1
        })
        .expect("a neighbor of dst inside its region");
    broken.apply(&RuleUpdate::Insert {
        device: victim,
        rule: Rule {
            priority: 99,
            matches: MatchSpec::dst(prefix),
            action: Action::Drop,
        },
    });
    let hp2 =
        plan_hierarchical(&broken, &inv, Partitioning::by_regions(&broken.topology, 4)).unwrap();
    let report = verify_hierarchical(&hp2);
    println!(
        "after blackholing {} : holds = {}, failing intra tasks: {:?}",
        broken.topology.name(victim),
        report.holds,
        report
            .failed
            .iter()
            .map(|(g, e)| format!("region {g} entry {}", broken.topology.name(*e)))
            .collect::<Vec<_>>()
    );
}
